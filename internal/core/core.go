// Package core implements the paper's three algorithms for processing
// joins between textual attributes, plus the integrated algorithm that
// picks among them by estimated cost.
//
// The join evaluated is
//
//	C1 SIMILAR_TO(λ) C2
//
// find, for each document of the outer collection C2, the λ documents of
// the inner collection C1 with the largest similarities. The three
// algorithms differ in which representations they consume:
//
//   - HHNL (Horizontal–Horizontal Nested Loop) reads raw documents from
//     both collections.
//   - HVNL (Horizontal–Vertical Nested Loop) reads documents from C2 and
//     probes the inverted file on C1 through its B+tree, caching entries.
//   - VVM (Vertical–Vertical Merge) merge-scans the inverted files of both
//     collections, partitioning the outer collection into ⌈SM/M⌉ ranges
//     when the similarity accumulator exceeds memory.
//
// All three produce identical results (the same λ matches per outer
// document, deterministically tie-broken), which the test suite verifies
// by property testing.
package core

import (
	"errors"
	"fmt"
	"strings"

	"textjoin/internal/collection"
	"textjoin/internal/document"
	"textjoin/internal/entrycache"
	"textjoin/internal/invfile"
	"textjoin/internal/iosim"
	"textjoin/internal/lsh"
	"textjoin/internal/reqtrace"
	"textjoin/internal/telemetry"
	"textjoin/internal/topk"
)

// Algorithm identifies one of the paper's join algorithms.
type Algorithm int

const (
	// HHNL is the Horizontal–Horizontal Nested Loop of Section 4.1.
	HHNL Algorithm = iota
	// HVNL is the Horizontal–Vertical Nested Loop of Section 4.2.
	HVNL
	// VVM is the Vertical–Vertical Merge of Section 4.3.
	VVM
	// LSH is the approximate MinHash/banding join: candidates from
	// shared buckets, verified with the exact scorer. The one algorithm
	// that trades bounded recall for I/O.
	LSH
)

// String names the algorithm as in the paper.
func (a Algorithm) String() string {
	switch a {
	case HHNL:
		return "HHNL"
	case HVNL:
		return "HVNL"
	case VVM:
		return "VVM"
	case LSH:
		return "LSH"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// ParseAlgorithm converts a flag string to an Algorithm.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch s {
	case "hhnl", "HHNL":
		return HHNL, nil
	case "hvnl", "HVNL":
		return HVNL, nil
	case "vvm", "VVM":
		return VVM, nil
	case "lsh", "LSH":
		return LSH, nil
	}
	return HHNL, fmt.Errorf("core: unknown algorithm %q", s)
}

// Errors returned by the join algorithms.
var (
	// ErrInsufficientMemory is returned when the memory budget cannot
	// hold even the minimal working set of an algorithm.
	ErrInsufficientMemory = errors.New("core: memory budget too small")
	// ErrMissingInput is returned when an algorithm lacks a required
	// input (e.g. VVM without both inverted files).
	ErrMissingInput = errors.New("core: missing input")
)

// Match is one (inner document, similarity) pair.
type Match = topk.Match

// Result holds the λ best inner matches of one outer document, best
// first. Outer documents with no non-zero similarity still appear, with an
// empty match list, so that len(results) always equals the number of outer
// documents.
type Result struct {
	Outer   uint32
	Matches []Match
}

// Options configures a join run.
type Options struct {
	// Lambda is λ: how many inner documents to return per outer
	// document. Defaults to 20, the paper's base value.
	Lambda int
	// MemoryPages is B: the buffer budget in pages. Defaults to 10000,
	// the paper's base value.
	MemoryPages int64
	// Weighting selects the similarity function (raw occurrence dot
	// product by default, as in the paper's analysis).
	Weighting document.Weighting
	// Delta is δ: the estimated fraction of non-zero similarities, used
	// to size HVNL's accumulator reservation and VVM's partitions.
	// Defaults to 0.1, the paper's base value.
	Delta float64
	// Backward runs HHNL in backward order (C1 outer): an extension the
	// paper mentions and defers to the technical report.
	Backward bool
	// CachePolicy selects HVNL's entry replacement policy. The default
	// is the paper's MinOuterDF.
	CachePolicy entrycache.Policy
	// Telemetry receives per-phase spans, counters and histograms while
	// the join runs. nil (the default) disables instrumentation with
	// near-zero overhead; enabling it never changes results or Stats,
	// which the differential test harness pins.
	Telemetry *telemetry.Collector
	// Trace is the request-scoped parent span: every phase the join
	// runs hangs a child span under it, mirroring the aggregate
	// telemetry phase spans with per-request causality. nil (the
	// default) disables request tracing with the same zero-allocation
	// contract as a nil Telemetry collector; tracing never changes
	// results or Stats.
	Trace *reqtrace.Span
	// Prefilter supplies signature sidecars for pruning provably
	// zero-similarity work from HHNL and HVNL (VVM's merge already
	// touches only co-occurring terms and ignores it). nil disables
	// pruning. Signatures only ever prove non-overlap, so prefiltered
	// results are byte-identical to unfiltered ones.
	Prefilter *Prefilter
	// LSH supplies the inner collection's MinHash sidecar. Required by
	// JoinLSH; offered to the integrated planner, which may pick the
	// approximate join when RecallSLO permits.
	LSH *lsh.Sidecar
	// RecallSLO is the lowest acceptable recall when the integrated
	// planner considers the approximate LSH join: 0 (the default) and 1
	// both restrict the planner to the exact algorithms; a value in
	// (0, 1) lets LSH win when its estimated recall meets the SLO and
	// its estimated cost beats every exact plan. Direct JoinLSH calls
	// ignore it.
	RecallSLO float64
}

// withDefaults fills in the paper's base values.
func (o Options) withDefaults() Options {
	if o.Lambda == 0 {
		o.Lambda = 20
	}
	if o.MemoryPages == 0 {
		o.MemoryPages = 10000
	}
	if o.Delta == 0 {
		o.Delta = 0.1
	}
	return o
}

func (o Options) validate() error {
	if o.Lambda < 0 || o.MemoryPages < 0 || o.Delta < 0 || o.Delta > 1 ||
		o.RecallSLO < 0 || o.RecallSLO > 1 {
		return fmt.Errorf("core: invalid options %+v", o)
	}
	return nil
}

// Stats reports what a join run did.
type Stats struct {
	// Algorithm that produced the results.
	Algorithm Algorithm
	// OuterDocs and InnerDocs are the document counts seen.
	OuterDocs, InnerDocs int64
	// Comparisons counts full document-pair similarity computations
	// (HHNL only).
	Comparisons int64
	// Accumulations counts cell-product accumulations (HVNL and VVM).
	Accumulations int64
	// EntryFetches counts inverted-file entries read from storage
	// (HVNL).
	EntryFetches int64
	// Passes counts outer blocks (HHNL) or partitions (VVM).
	Passes int
	// IO is the page I/O performed by the join across the files it
	// touched.
	IO iosim.Stats
	// Cost is IO priced at the disk's α.
	Cost float64
	// Cache reports HVNL's entry-cache effectiveness.
	Cache entrycache.Stats
	// PeakMemoryBytes is the maximum working-set estimate observed.
	PeakMemoryBytes int64
	// Prefilter reports the signature pruning outcome when
	// Options.Prefilter was set.
	Prefilter PrefilterStats
	// LSH reports the bucket-probe outcome of the approximate join.
	LSH LSHStats
}

// LSHStats reports what the approximate join's candidate generation
// did. Comparisons in the parent Stats counts the exact-scorer
// verifications of the candidates.
type LSHStats struct {
	// Enabled records whether the run was an LSH join.
	Enabled bool
	// BucketProbes counts band-bucket lookups (outer docs × bands).
	BucketProbes int64
	// Candidates counts distinct (outer, inner) candidate pairs sent to
	// verification.
	Candidates int64
	// PagesSkipped counts inner collection pages the verify scan never
	// read because no resident outer document had a candidate there.
	PagesSkipped int64
	// DocsSkipped counts inner documents never decoded.
	DocsSkipped int64
}

// Inputs bundles the representations available to the join. Every
// algorithm uses a subset:
//
//	HHNL: Outer, Inner
//	HVNL: Outer, Inner (statistics), InnerInv
//	VVM:  InnerInv, OuterInv, and Outer only to restrict a selection
type Inputs struct {
	// Outer is the C2 side: a full collection or a selection subset.
	Outer collection.Reader
	// Inner is the C1 side collection.
	Inner *collection.Collection
	// InnerInv is the inverted file on C1.
	InnerInv *invfile.InvertedFile
	// OuterInv is the inverted file on C2's base collection.
	OuterInv *invfile.InvertedFile
}

// scorer builds the scorer implied by the options.
func (in Inputs) scorer(o Options) (*document.Scorer, error) {
	switch o.Weighting {
	case document.RawTF:
		return document.NewScorer(document.RawTF, nil, nil, nil)
	case document.Cosine:
		if in.Inner == nil || in.Outer == nil {
			return nil, fmt.Errorf("%w: cosine weighting needs both collections", ErrMissingInput)
		}
		return document.NewScorer(document.Cosine, nil, in.Outer.Norms(), in.Inner.Norms())
	case document.TFIDF:
		if in.Inner == nil {
			return nil, fmt.Errorf("%w: tfidf weighting needs the inner collection", ErrMissingInput)
		}
		return document.NewScorer(document.TFIDF, in.Inner.IDFMap(), nil, nil)
	default:
		return nil, fmt.Errorf("core: unknown weighting %v", o.Weighting)
	}
}

// ioTracker snapshots per-file counters so a join can report exactly its
// own I/O even when several structures share a disk.
type ioTracker struct {
	files  []*iosim.File
	before []iosim.Stats
}

func trackIO(files ...*iosim.File) *ioTracker {
	t := &ioTracker{}
	seen := make(map[*iosim.File]bool)
	for _, f := range files {
		if f == nil || seen[f] {
			continue
		}
		seen[f] = true
		t.files = append(t.files, f)
		t.before = append(t.before, f.Stats())
	}
	return t
}

func (t *ioTracker) delta() iosim.Stats {
	var total iosim.Stats
	for i, f := range t.files {
		total.Add(f.Stats().Sub(t.before[i]))
	}
	return total
}

// recordJoinStats publishes a finished join's Stats as telemetry
// counters under "join.<alg>.*", so one snapshot carries the same
// counts the Stats struct reports after the fact. No-op when tel is
// nil; never mutates stats, so enabled and disabled runs stay
// byte-identical.
func recordJoinStats(tel *telemetry.Collector, st *Stats) {
	if tel == nil {
		return
	}
	p := "join." + strings.ToLower(st.Algorithm.String())
	tel.Counter(p + ".outer_docs").Add(st.OuterDocs)
	tel.Counter(p + ".inner_docs").Add(st.InnerDocs)
	tel.Counter(p + ".comparisons").Add(st.Comparisons)
	tel.Counter(p + ".accumulations").Add(st.Accumulations)
	tel.Counter(p + ".entry_fetches").Add(st.EntryFetches)
	tel.Counter(p + ".passes").Add(int64(st.Passes))
	tel.Counter(p + ".io.seq").Add(st.IO.SeqReads)
	tel.Counter(p + ".io.rand").Add(st.IO.RandReads)
	tel.Counter(p + ".peak_bytes").Add(st.PeakMemoryBytes)
	if st.Prefilter.Enabled {
		tel.Counter(p + ".prefilter.pages_skipped").Add(st.Prefilter.PagesSkipped)
		tel.Counter(p + ".prefilter.clusters_skipped").Add(st.Prefilter.ClustersSkipped)
		tel.Counter(p + ".prefilter.docs_skipped").Add(st.Prefilter.DocsSkipped)
		tel.Counter(p + ".prefilter.false_passes").Add(st.Prefilter.FalsePasses)
	}
	if st.LSH.Enabled {
		tel.Counter(p + ".bucket_probes").Add(st.LSH.BucketProbes)
		tel.Counter(p + ".candidates").Add(st.LSH.Candidates)
		tel.Counter(p + ".pages_skipped").Add(st.LSH.PagesSkipped)
		tel.Counter(p + ".docs_skipped").Add(st.LSH.DocsSkipped)
	}
}

// phaseSpan pairs the aggregate telemetry span with the per-request
// trace span, so every instrumented phase reports to both sinks with
// one call. It is a value type: when both sinks are disabled (nil
// collector, nil trace) startPhase allocates nothing and End is two
// nil checks.
type phaseSpan struct {
	tel telemetry.Span
	req *reqtrace.Span
}

// startPhase opens the phase in both sinks under the same phase label,
// so the request tree and the aggregate phase histograms line up.
func startPhase(tel *telemetry.Collector, trace *reqtrace.Span, phase, name string) phaseSpan {
	return phaseSpan{tel: tel.StartSpan(phase, name), req: trace.StartChild(phase, name)}
}

// End finishes the phase in both sinks.
func (p phaseSpan) End() {
	p.tel.End()
	p.req.End()
}

// alpha returns the cost ratio of the disk backing the first non-nil file.
func alpha(files ...*iosim.File) float64 {
	for _, f := range files {
		if f != nil {
			return f.Disk().Alpha()
		}
	}
	return iosim.DefaultAlpha
}

// Join runs the given algorithm.
func Join(alg Algorithm, in Inputs, opts Options) ([]Result, *Stats, error) {
	switch alg {
	case HHNL:
		return JoinHHNL(in, opts)
	case HVNL:
		return JoinHVNL(in, opts)
	case VVM:
		return JoinVVM(in, opts)
	case LSH:
		return JoinLSH(in, opts)
	default:
		return nil, nil, fmt.Errorf("core: unknown algorithm %v", alg)
	}
}
