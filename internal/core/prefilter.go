package core

import (
	"fmt"
	"io"

	"textjoin/internal/collection"
	"textjoin/internal/costmodel"
	"textjoin/internal/document"
	"textjoin/internal/signature"
)

// Prefilter supplies the signature sidecars the joins prune with.
//
// Inner is required: it must describe Inputs.Inner's current layout
// (build the sidecar after any reordering). Outer is optional and must
// describe the outer base collection; when present, HVNL skips
// candidate outer documents before reading them, otherwise outer
// signatures are computed on the fly from each decoded document (a
// CPU-only skip).
//
// Pruning never changes results: a zero AND between signatures proves
// the term sets are disjoint, the pair's similarity is exactly zero,
// and zero similarities are never kept by the λ-trackers. Signatures
// may only skip, never admit.
type Prefilter struct {
	// Inner is the sidecar built over Inputs.Inner.
	Inner *signature.Sidecar
	// Outer is the sidecar built over the outer base collection, or nil.
	Outer *signature.Sidecar
}

// PrefilterStats reports the pruning outcome of one join.
type PrefilterStats struct {
	// Enabled records whether Options.Prefilter was active.
	Enabled bool
	// PagesSkipped counts collection pages the join avoided reading.
	PagesSkipped int64
	// ClustersSkipped counts whole clusters disqualified by one
	// aggregate AND.
	ClustersSkipped int64
	// DocsSkipped counts documents never decoded (HHNL inner side) or
	// never probed (HVNL outer side), including those inside skipped
	// clusters.
	DocsSkipped int64
	// FalsePasses counts documents that passed the filter but produced
	// no overlap — the code's false-positive rate in the data.
	FalsePasses int64
}

// activePrefilter validates Options.Prefilter against the inputs and
// returns it, or nil when pruning is off. A sidecar that does not match
// its collection is an error: stale signatures could skip real matches.
func activePrefilter(in Inputs, opts Options) (*Prefilter, error) {
	pf := opts.Prefilter
	if pf == nil {
		return nil, nil
	}
	if pf.Inner == nil {
		return nil, fmt.Errorf("%w: Prefilter needs the inner sidecar", ErrMissingInput)
	}
	if in.Inner != nil && int64(pf.Inner.NumDocs()) != in.Inner.NumDocs() {
		return nil, fmt.Errorf("core: inner sidecar covers %d docs, collection has %d — rebuild the sidecar",
			pf.Inner.NumDocs(), in.Inner.NumDocs())
	}
	if pf.Outer != nil && in.Outer != nil {
		if base := in.Outer.Base(); base != nil && int64(pf.Outer.NumDocs()) != base.NumDocs() {
			return nil, fmt.Errorf("core: outer sidecar covers %d docs, base collection has %d — rebuild the sidecar",
				pf.Outer.NumDocs(), base.NumDocs())
		}
	}
	return pf, nil
}

// sidecarNeed computes the keep vector of a filtered sweep over coll:
// which documents could overlap the query signature q. The hierarchy is
// cluster aggregate first (one AND disqualifies ClusterDocs documents),
// then the spanned page aggregates, then the per-document signature.
// Skip counters accrue into pst; PagesSkipped is the exact page saving
// of scanning only the kept documents.
func sidecarNeed(sc *signature.Sidecar, coll *collection.Collection, q signature.Sig, need []bool, pst *PrefilterStats) ([]bool, error) {
	n := sc.NumDocs()
	if cap(need) < n {
		need = make([]bool, n)
	}
	need = need[:n]
	for cl := 0; cl < sc.NumClusters(); cl++ {
		lo, hi := sc.ClusterRange(cl)
		if !signature.Overlaps(sc.Cluster(cl), q) {
			for id := lo; id < hi; id++ {
				need[id] = false
			}
			pst.ClustersSkipped++
			pst.DocsSkipped += int64(hi - lo)
			continue
		}
		for id := lo; id < hi; id++ {
			live, err := docPagesLive(sc, coll, id, q)
			if err != nil {
				return nil, err
			}
			keep := live && signature.Overlaps(sc.Doc(id), q)
			need[id] = keep
			if !keep {
				pst.DocsSkipped++
			}
		}
	}
	touched, err := touchedPages(coll, need)
	if err != nil {
		return nil, err
	}
	pst.PagesSkipped += coll.File().Pages() - touched
	return need, nil
}

// docPagesLive reports whether any page the document spans has an
// aggregate overlapping q. All pages disqualified proves the document
// disqualified (page aggregates are supersets of their documents).
func docPagesLive(sc *signature.Sidecar, coll *collection.Collection, id uint32, q signature.Sig) (bool, error) {
	ref, err := coll.Ref(id)
	if err != nil {
		return false, err
	}
	ps := int64(coll.File().PageSize())
	first := ref.Off / ps
	last := (ref.Off + int64(ref.Len) - 1) / ps
	for p := first; p <= last && p < sc.NumPages(); p++ {
		if signature.Overlaps(sc.Page(p), q) {
			return true, nil
		}
	}
	return false, nil
}

// touchedPages counts the distinct pages the kept documents span — the
// pages a filtered sweep actually reads.
func touchedPages(coll *collection.Collection, need []bool) (int64, error) {
	ps := int64(coll.File().PageSize())
	var touched int64
	last := int64(-1)
	for id, keep := range need {
		if !keep {
			continue
		}
		ref, err := coll.Ref(uint32(id))
		if err != nil {
			return 0, err
		}
		first := ref.Off / ps
		lastP := (ref.Off + int64(ref.Len) - 1) / ps
		if first > last {
			touched += lastP - first + 1
		} else if lastP > last {
			touched += lastP - last
		}
		if lastP > last {
			last = lastP
		}
	}
	return touched, nil
}

// batchSig ORs the signatures of a resident outer batch into one query
// signature for the inner-side tests. The signatures are recomputed
// from the decoded documents (the batch is already in memory, so this
// is CPU-only) under the inner sidecar's configuration — both sides of
// an AND must share one code.
func batchSig(cfg signature.Config, batch []*document.Document, q signature.Sig) signature.Sig {
	if len(q) != cfg.Words() {
		q = cfg.New()
	}
	for i := range q {
		q[i] = 0
	}
	for _, d := range batch {
		q = cfg.FromDoc(q, d)
	}
	return q
}

// emptyMatches is the empty result row a prefilter skip fabricates; it
// matches topk.Results() on an empty tracker (non-nil, zero length) so
// skipped and scored-to-zero rows are byte-identical.
func emptyMatches() []Match { return make([]Match, 0) }

// outerPrefilter drives HVNL's outer sweep under a prefilter: it yields
// either the next kept document or the id of a skipped one (whose
// result row is empty by proof). The storage pattern depends on the
// outer reader:
//
//   - full collection with an outer sidecar: the keep vector is computed
//     up front from the aggregates and a filtered scan reads only the
//     kept documents' pages;
//   - selection subset with an outer sidecar: skipped ids save their
//     random fetches;
//   - anything else: documents are read as usual and tested on the fly
//     (a CPU-only skip of the probe work).
type outerPrefilter struct {
	st   *Stats
	root signature.Sig

	// Full-collection path.
	coll *collection.Collection
	need []bool
	fsc  *collection.FilteredScanner
	pos  int64
	n    int64

	// Subset path.
	sub  *collection.Subset
	base *collection.Collection
	ids  []uint32
	keep []bool

	// On-the-fly path.
	plain collection.DocIterator
	cfg   signature.Config
	sig   signature.Sig
}

// newOuterPrefilter builds the sweep driver; st accrues the skip
// counters as the keep decisions are made.
func newOuterPrefilter(in Inputs, pf *Prefilter, st *Stats) (*outerPrefilter, error) {
	o := &outerPrefilter{st: st, root: pf.Inner.Root()}
	if pf.Outer != nil {
		switch r := in.Outer.(type) {
		case *collection.Collection:
			o.coll = r
			o.n = r.NumDocs()
			need, err := sidecarNeed(pf.Outer, r, o.root, nil, &st.Prefilter)
			if err != nil {
				return nil, err
			}
			o.need = need
			o.fsc = r.ScanFiltered(func(id uint32) bool { return need[id] })
			return o, nil
		case *collection.Subset:
			o.sub = r
			o.base = r.Base()
			o.ids = r.IDs()
			o.keep = make([]bool, len(o.ids))
			for i, id := range o.ids {
				keep := signature.Overlaps(pf.Outer.Cluster(pf.Outer.ClusterOf(id)), o.root) &&
					signature.Overlaps(pf.Outer.Doc(id), o.root)
				o.keep[i] = keep
				if !keep {
					st.Prefilter.DocsSkipped++
					if saved, err := spannedPages(o.base, id); err == nil {
						st.Prefilter.PagesSkipped += saved
					} else {
						return nil, err
					}
				}
			}
			return o, nil
		}
	}
	// No usable outer sidecar: read and test on the fly.
	o.plain = in.Outer.Documents()
	o.cfg = pf.Inner.Config()
	o.sig = o.cfg.New()
	return o, nil
}

// measurePrefilter measures the sidecars' pruning power for the planner.
// All measures are CPU-only over the memory-resident aggregates. The
// inner-scan skip is probed with the outer root aggregate — every HHNL
// batch signature is a subset of it, so the measured skip is a lower
// bound on the skip each batch actually achieves (the plan never
// overstates the saving). Without an outer sidecar the skip terms stay
// zero: the planner then sees only the sidecar-load surcharge and keeps
// the unfiltered plan, matching the on-the-fly path's CPU-only savings.
func measurePrefilter(pf *Prefilter) costmodel.Prefilter {
	mp := costmodel.Prefilter{SidecarPages: float64(pf.Inner.Pages())}
	if pf.Outer == nil {
		return mp
	}
	mp.SidecarPages += float64(pf.Outer.Pages())
	innerRoot := pf.Inner.Root()
	outerRoot := pf.Outer.Root()
	skipped, runs := pf.Inner.PageSkip(outerRoot)
	if np := pf.Inner.NumPages(); np > 0 {
		mp.PageSkip = float64(skipped) / float64(np)
	}
	mp.ScanRuns = float64(runs)
	if n := pf.Outer.NumDocs(); n > 0 {
		mp.DocSkip = float64(pf.Outer.DocSkip(innerRoot)) / float64(n)
	}
	_, outerRuns := pf.Outer.PageSkip(innerRoot)
	mp.OuterRuns = float64(outerRuns)
	return mp
}

// spannedPages counts the pages document id spans in its collection —
// the reads a skipped random fetch saves.
func spannedPages(c *collection.Collection, id uint32) (int64, error) {
	ref, err := c.Ref(id)
	if err != nil {
		return 0, err
	}
	ps := int64(c.File().PageSize())
	return (ref.Off+int64(ref.Len)-1)/ps - ref.Off/ps + 1, nil
}

// next yields the next outer document (skipped == false) or the id of a
// skipped one (skipped == true, d == nil). io.EOF ends the sweep. Kept
// documents follow the reuse contract of collection.NextReuse.
func (o *outerPrefilter) next() (d *document.Document, skippedID uint32, skipped bool, err error) {
	switch {
	case o.coll != nil:
		if o.pos >= o.n {
			return nil, 0, false, io.EOF
		}
		id := uint32(o.pos)
		o.pos++
		if !o.need[id] {
			return nil, id, true, nil
		}
		d, err := o.fsc.NextReuse()
		return d, 0, false, err
	case o.sub != nil:
		if o.pos >= int64(len(o.ids)) {
			return nil, 0, false, io.EOF
		}
		i := o.pos
		o.pos++
		id := o.ids[i]
		if !o.keep[i] {
			return nil, id, true, nil
		}
		// Mirror the subset iterator: one random fetch per document.
		d, err := o.base.Fetch(id)
		if err != nil {
			return nil, 0, false, err
		}
		o.base.File().ParkHead()
		return d, 0, false, nil
	default:
		d, err := collection.NextReuse(o.plain)
		if err != nil {
			return nil, 0, false, err
		}
		for i := range o.sig {
			o.sig[i] = 0
		}
		o.sig = o.cfg.FromDoc(o.sig, d)
		if !signature.Overlaps(o.sig, o.root) {
			o.st.Prefilter.DocsSkipped++
			return nil, d.ID, true, nil
		}
		return d, 0, false, nil
	}
}
