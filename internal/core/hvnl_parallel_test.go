package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"textjoin/internal/document"
	"textjoin/internal/entrycache"
	"textjoin/internal/iosim"
)

// sameHVNLStats asserts the statistics the parallel HVNL must reproduce
// exactly: all storage access stays on one goroutine in serial order, so
// page counts, the sequential/random split, cache behavior, entry fetches,
// accumulation counts and the peak-memory estimate are byte-identical.
//
// The callers compare runs over freshly rebuilt environments: the
// simulated disk head position persists across runs, so re-running even
// the identical access sequence on a used disk can reclassify its first
// reads.
func sameHVNLStats(t *testing.T, label string, serial, par *Stats) {
	t.Helper()
	if par.IO != serial.IO {
		t.Errorf("%s: IO %+v vs serial %+v", label, par.IO, serial.IO)
	}
	if par.Cache != serial.Cache {
		t.Errorf("%s: cache %+v vs serial %+v", label, par.Cache, serial.Cache)
	}
	if par.EntryFetches != serial.EntryFetches {
		t.Errorf("%s: entry fetches %d vs serial %d", label, par.EntryFetches, serial.EntryFetches)
	}
	if par.Accumulations != serial.Accumulations {
		t.Errorf("%s: accumulations %d vs serial %d", label, par.Accumulations, serial.Accumulations)
	}
	if par.Passes != serial.Passes {
		t.Errorf("%s: passes %d vs serial %d", label, par.Passes, serial.Passes)
	}
	if par.PeakMemoryBytes != serial.PeakMemoryBytes {
		t.Errorf("%s: peak memory %d vs serial %d", label, par.PeakMemoryBytes, serial.PeakMemoryBytes)
	}
	if par.Cost != serial.Cost {
		t.Errorf("%s: cost %v vs serial %v", label, par.Cost, serial.Cost)
	}
}

// TestHVNLParallelIdentity is the tentpole's identity matrix: parallel
// HVNL against serial HVNL across all three weightings, worker counts
// {1, 2, 7}, both cache policies, and cache budgets spanning the
// preload-everything regime down to one that forces evictions — results
// and every I/O-visible statistic must match exactly. Every run gets a
// freshly built environment so the simulated disk starts from the same
// head position.
func TestHVNLParallelIdentity(t *testing.T) {
	build := func() Inputs { return buildEnv(t, 61, 42, 36, 65, 15, 128).inputs() }
	optsList := []Options{
		{Lambda: 5, MemoryPages: 4000},                            // roomy: sequential preload regime
		{Lambda: 5, MemoryPages: 40},                              // tight: demand fetches with evictions
		{Lambda: 5, MemoryPages: 40, CachePolicy: entrycache.LRU}, // tight, ablation policy
		{Lambda: 3, MemoryPages: 120, Delta: 0.9},                 // large accumulator reservation
	}
	for _, weighting := range []document.Weighting{document.RawTF, document.Cosine, document.TFIDF} {
		for _, base := range optsList {
			opts := base
			opts.Weighting = weighting
			serial, serialStats, err := JoinHVNL(build(), opts)
			if err != nil {
				if errors.Is(err, ErrInsufficientMemory) {
					continue
				}
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 7} {
				par, parStats, err := JoinHVNLParallel(build(), opts, workers)
				if err != nil {
					t.Fatalf("%v workers=%d: %v", weighting, workers, err)
				}
				if err := sameResults(serial, par); err != nil {
					t.Fatalf("%v workers=%d opts %+v: %v", weighting, workers, opts, err)
				}
				sameHVNLStats(t, weighting.String(), serialStats, parStats)
			}
		}
	}
}

// TestHVNLParallelSubset joins a scattered selection subset, serial and
// parallel, against the brute-force reference.
func TestHVNLParallelSubset(t *testing.T) {
	subsetIDs := []uint32{1, 2, 6, 9, 16, 23, 24, 40, 43}
	build := func() Inputs {
		e := buildEnv(t, 62, 38, 44, 58, 13, 128)
		sub, err := e.c2.Subset(subsetIDs)
		if err != nil {
			t.Fatal(err)
		}
		return Inputs{Outer: sub, Inner: e.c1, InnerInv: e.inv1, OuterInv: e.inv2}
	}
	refIn := build()
	scorer, err := refIn.scorer(Options{}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	want := reference(t, refIn.Outer, refIn.Inner, 4, scorer)
	for _, opts := range []Options{
		{Lambda: 4, MemoryPages: 4000},
		{Lambda: 4, MemoryPages: 50},
	} {
		serial, serialStats, err := JoinHVNL(build(), opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := sameResults(want, serial); err != nil {
			t.Fatalf("serial opts %+v: %v", opts, err)
		}
		for _, workers := range []int{2, 7} {
			par, parStats, err := JoinHVNLParallel(build(), opts, workers)
			if err != nil {
				t.Fatal(err)
			}
			if err := sameResults(want, par); err != nil {
				t.Fatalf("parallel workers=%d opts %+v: %v", workers, opts, err)
			}
			sameHVNLStats(t, "subset", serialStats, parStats)
		}
	}
}

// TestQuickHVNLParallelEqual property-tests parallel HVNL against serial
// on random corpora, random cache budgets, random worker counts and
// random subsets. The corpus, options and worker count all derive
// deterministically from the seed, so serial and parallel runs see
// identical freshly built environments.
func TestQuickHVNLParallelEqual(t *testing.T) {
	check := func(seed int64, pages16 uint16, subset bool) bool {
		build := func() (Inputs, Options, int) {
			r := rand.New(rand.NewSource(seed))
			d := iosim.NewDisk(iosim.WithPageSize(128))
			c1 := buildColl(t, d, "c1", randomDocs(r, r.Intn(25)+1, 50, 10))
			c2 := buildColl(t, d, "c2", randomDocs(r, r.Intn(25)+1, 50, 10))
			inv1 := buildInv(t, d, c1, "c1")
			inv2 := buildInv(t, d, c2, "c2")
			in := Inputs{Outer: c2, Inner: c1, InnerInv: inv1, OuterInv: inv2}
			if subset {
				ids := make([]uint32, 0, c2.NumDocs())
				for id := int64(0); id < c2.NumDocs(); id++ {
					if r.Intn(2) == 0 {
						ids = append(ids, uint32(id))
					}
				}
				sub, err := c2.Subset(ids)
				if err != nil {
					t.Fatal(err)
				}
				in.Outer = sub
			}
			opts := Options{Lambda: r.Intn(5) + 1, MemoryPages: int64(pages16%200) + 20}
			workers := r.Intn(7) + 1
			return in, opts, workers
		}
		in, opts, workers := build()
		serial, serialStats, err := JoinHVNL(in, opts)
		if err != nil {
			// A tiny budget may be legitimately insufficient; the parallel
			// variant must agree.
			if !errors.Is(err, ErrInsufficientMemory) {
				t.Fatal(err)
			}
			in, opts, _ = build()
			_, _, perr := JoinHVNLParallel(in, opts, 2)
			return errors.Is(perr, ErrInsufficientMemory)
		}
		in, opts, _ = build()
		par, parStats, err := JoinHVNLParallel(in, opts, workers)
		if err != nil {
			t.Fatal(err)
		}
		if sameResults(serial, par) != nil {
			return false
		}
		return parStats.IO == serialStats.IO &&
			parStats.Cache == serialStats.Cache &&
			parStats.EntryFetches == serialStats.EntryFetches &&
			parStats.Accumulations == serialStats.Accumulations &&
			parStats.PeakMemoryBytes == serialStats.PeakMemoryBytes
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
