package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"textjoin/internal/document"
	"textjoin/internal/iosim"
)

// The accumulator layer (internal/accum) must be invisible in results:
// dense and open-addressing passes, serial and owner-sharded parallel
// workers, full collections and selections all produce byte-identical
// top-λ lists. These tests pin that across the regime boundaries.

// TestVVMAccumulatorRegimes runs the same join in the dense regime (one
// roomy pass), the open-addressing regime (δ=1 forces the sparse estimate
// over budget) and a many-pass split, expecting identical results.
func TestVVMAccumulatorRegimes(t *testing.T) {
	e := buildEnv(t, 51, 45, 38, 70, 16, 128)
	base, baseStats, err := JoinVVM(e.inputs(), Options{Lambda: 4, MemoryPages: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if baseStats.Passes != 1 {
		t.Fatalf("base run: %d passes, want 1 (dense single pass)", baseStats.Passes)
	}
	for _, opts := range []Options{
		{Lambda: 4, MemoryPages: 12, Delta: 1.0}, // sparse, multi-pass
		{Lambda: 4, MemoryPages: 20, Delta: 0.5},
	} {
		got, gotStats, err := JoinVVM(e.inputs(), opts)
		if err != nil {
			t.Fatal(err)
		}
		if gotStats.Passes <= 1 {
			t.Fatalf("opts %+v: %d passes, want a multi-pass split", opts, gotStats.Passes)
		}
		if err := sameResults(base, got); err != nil {
			t.Fatalf("opts %+v: %v", opts, err)
		}
	}
}

// TestVVMParallelIdentity is the tentpole's identity matrix: parallel VVM
// against serial VVM across all three weightings and worker counts
// {1, 2, 7}, in both single-pass and partitioned runs.
func TestVVMParallelIdentity(t *testing.T) {
	e := buildEnv(t, 52, 40, 33, 60, 14, 128)
	for _, weighting := range []document.Weighting{document.RawTF, document.Cosine, document.TFIDF} {
		for _, opts := range []Options{
			{Lambda: 5, MemoryPages: 2000, Weighting: weighting},
			{Lambda: 5, MemoryPages: 10, Delta: 1.0, Weighting: weighting},
		} {
			serial, serialStats, err := JoinVVM(e.inputs(), opts)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 7} {
				par, parStats, err := JoinVVMParallel(e.inputs(), opts, workers)
				if err != nil {
					t.Fatalf("%v workers=%d: %v", weighting, workers, err)
				}
				if err := sameResults(serial, par); err != nil {
					t.Fatalf("%v workers=%d: %v", weighting, workers, err)
				}
				if parStats.Accumulations != serialStats.Accumulations {
					t.Errorf("%v workers=%d: accumulations %d vs %d", weighting, workers, parStats.Accumulations, serialStats.Accumulations)
				}
				if parStats.Passes != serialStats.Passes {
					t.Errorf("%v workers=%d: passes %d vs %d", weighting, workers, parStats.Passes, serialStats.Passes)
				}
			}
		}
	}
}

// TestVVMSubsetAcrossRegimes joins a scattered selection (exercising the
// IDSet bitmap/binary-search paths rather than the contiguous fast path)
// under both accumulator regimes, serial and parallel, against the
// brute-force reference.
func TestVVMSubsetAcrossRegimes(t *testing.T) {
	e := buildEnv(t, 53, 35, 40, 55, 12, 128)
	sub, err := e.c2.Subset([]uint32{0, 3, 4, 11, 17, 18, 19, 31, 39})
	if err != nil {
		t.Fatal(err)
	}
	in := Inputs{Outer: sub, Inner: e.c1, InnerInv: e.inv1, OuterInv: e.inv2}
	scorer, err := in.scorer(Options{}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	want := reference(t, sub, e.c1, 4, scorer)
	for _, opts := range []Options{
		{Lambda: 4, MemoryPages: 2000},           // dense
		{Lambda: 4, MemoryPages: 10, Delta: 1.0}, // sparse, partitioned
	} {
		got, _, err := JoinVVM(in, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := sameResults(want, got); err != nil {
			t.Fatalf("serial opts %+v: %v", opts, err)
		}
		for _, workers := range []int{2, 7} {
			par, _, err := JoinVVMParallel(in, opts, workers)
			if err != nil {
				t.Fatal(err)
			}
			if err := sameResults(want, par); err != nil {
				t.Fatalf("parallel workers=%d opts %+v: %v", workers, opts, err)
			}
		}
	}
}

// TestQuickAccumRegimesEqual property-tests that memory budget (and with
// it the dense/sparse accumulator choice and the pass split) never
// changes any algorithm's results, on random corpora and random subsets.
func TestQuickAccumRegimesEqual(t *testing.T) {
	check := func(seed int64, pages16 uint16, subset bool) bool {
		r := rand.New(rand.NewSource(seed))
		d := iosim.NewDisk(iosim.WithPageSize(128))
		c1 := buildColl(t, d, "c1", randomDocs(r, r.Intn(25)+1, 50, 10))
		c2 := buildColl(t, d, "c2", randomDocs(r, r.Intn(25)+1, 50, 10))
		inv1 := buildInv(t, d, c1, "c1")
		inv2 := buildInv(t, d, c2, "c2")
		in := Inputs{Outer: c2, Inner: c1, InnerInv: inv1, OuterInv: inv2}
		if subset {
			ids := make([]uint32, 0, c2.NumDocs())
			for id := int64(0); id < c2.NumDocs(); id++ {
				if r.Intn(2) == 0 {
					ids = append(ids, uint32(id))
				}
			}
			sub, err := c2.Subset(ids)
			if err != nil {
				t.Fatal(err)
			}
			in.Outer = sub
		}
		roomy := Options{Lambda: r.Intn(5) + 1, MemoryPages: 5000}
		tight := roomy
		tight.MemoryPages = int64(pages16%40) + 6
		tight.Delta = 1.0

		want, _, err := JoinVVM(in, roomy)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := JoinVVM(in, tight)
		if err != nil {
			// A tiny budget may be legitimately insufficient.
			return errors.Is(err, ErrInsufficientMemory)
		}
		if sameResults(want, got) != nil {
			return false
		}
		par, _, err := JoinVVMParallel(in, tight, r.Intn(7)+1)
		if err != nil {
			t.Fatal(err)
		}
		return sameResults(want, par) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
