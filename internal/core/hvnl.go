package core

import (
	"fmt"
	"io"

	"textjoin/internal/accum"
	"textjoin/internal/collection"
	"textjoin/internal/document"
	"textjoin/internal/entrycache"
	"textjoin/internal/iosim"
	"textjoin/internal/telemetry"
	"textjoin/internal/topk"
)

// JoinHVNL evaluates the join with the Horizontal–Vertical Nested Loop of
// Section 4.2: read each document d of C2 in turn and, while d is in
// memory, read the inverted file entries on C1 corresponding to d's terms,
// accumulating similarities between d and every C1 document.
//
// Faithful to the paper:
//
//   - The whole B+tree on C1 is loaded into memory first (one-time cost of
//     Bt1 sequential page reads) and decides for free whether a term of d
//     appears in C1 at all.
//   - Entries fetched for earlier documents are kept in a memory-budgeted
//     cache; the replacement victim is the entry whose term has the lowest
//     document frequency in C2 (Options.CachePolicy selects LRU instead
//     for the ablation benchmark).
//   - When a new document is processed, its terms whose entries are
//     already cached are consumed first.
//   - Only non-zero intermediate similarities are stored; the memory
//     reservation for them is 4·N1·δ bytes, exactly the paper's estimate.
//     The store itself is an accum.Flat — inner ids are contiguous
//     0..N1-1, so each accumulation is one indexed add and the touched
//     list keeps reset and iteration proportional to the non-zero count.
//
// The cache budget realizes the paper's X (number of resident entries):
// B·P bytes minus one outer document (⌈S2⌉ pages), the B+tree (Bt1 pages),
// the accumulator reservation, and the in-memory term list.
func JoinHVNL(in Inputs, opts Options) ([]Result, *Stats, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, nil, err
	}
	if in.Outer == nil || in.InnerInv == nil || in.Inner == nil {
		return nil, nil, fmt.Errorf("%w: HVNL needs the outer documents and the inner inverted file", ErrMissingInput)
	}
	scorer, err := in.scorer(opts)
	if err != nil {
		return nil, nil, err
	}
	pf, err := activePrefilter(in, opts)
	if err != nil {
		return nil, nil, err
	}

	invFile := in.InnerInv.File()
	var treeFile *iosim.File
	if in.InnerInv.Tree() != nil {
		treeFile = in.InnerInv.Tree().File()
	}
	track := trackIO(in.Outer.File(), invFile, treeFile)
	tel, trace := opts.Telemetry, opts.Trace

	// One-time load of the B+tree into memory.
	setup := startPhase(tel, trace, telemetry.PhaseSetup, "hvnl.load-index")
	index, err := in.InnerInv.LoadIndex()
	setup.End()
	if err != nil {
		return nil, nil, err
	}
	pageSize := int64(invFile.PageSize())
	btreeBytes := index.SizePages(int(pageSize)) * pageSize

	// Memory budget for the entry cache.
	total := opts.MemoryPages * pageSize
	outerDocBytes := iosim.PagesForBytes(int64(in.Outer.AvgDocBytes()+0.999), int(pageSize)) * pageSize
	accBytes := int64(4 * float64(in.Inner.NumDocs()) * opts.Delta)
	// The in-memory term list costs |t#| = 3 bytes per resident entry;
	// approximate with 3 bytes per N1·δ distinct cached terms folded into
	// the per-entry size below (the paper adds X·|t#|/P to the memory
	// use; we charge 3 bytes on each cached entry instead).
	cacheBudget := total - outerDocBytes - btreeBytes - accBytes
	if cacheBudget <= 0 {
		return nil, nil, fmt.Errorf("%w: B=%d pages leaves no room for inverted entries (doc %d + btree %d + accumulators %d bytes)",
			ErrInsufficientMemory, opts.MemoryPages, outerDocBytes, btreeBytes, accBytes)
	}

	// Outer document frequencies drive the replacement policy. For a
	// selection subset the base collection's statistics are used, as an
	// IR system would ("document frequencies are stored for similarity
	// computation ... no extra effort is needed to get them").
	outerDF := in.Outer.DF
	cache := entrycache.New(cacheBudget, opts.CachePolicy, func(term uint32) int64 { return outerDF(term) })
	cache.SetTelemetry(tel)

	stats := &Stats{Algorithm: HVNL, InnerDocs: in.Inner.NumDocs()}
	if pf != nil {
		stats.Prefilter.Enabled = true
	}

	// Paper, first regime of hvs: when memory holds all inverted file
	// entries (X ≥ T1), "we can either read in the entire inverted file
	// on C1 in sequential order ... or read in all inverted file entries
	// needed to process the query ... in random order", whichever is
	// cheaper. Preload sequentially when every entry fits and the
	// sequential sweep beats the expected random fetches.
	invStats := in.InnerInv.Stats()
	totalEntryBytes := invStats.Bytes + 3*invStats.Entries
	if totalEntryBytes > 0 && totalEntryBytes <= cacheBudget {
		var neededPages int64
		for _, cell := range index.Cells() {
			if in.Outer.DF(cell.Term) > 0 {
				p, err := in.InnerInv.EntryPages(cell.Term)
				if err != nil {
					return nil, nil, err
				}
				neededPages += p
			}
		}
		seqCost := float64(invStats.I)
		randCost := float64(neededPages) * invFile.Disk().Alpha()
		if seqCost < randCost {
			preload := startPhase(tel, trace, telemetry.PhaseScan, "hvnl.preload")
			sc := in.InnerInv.Scan()
			for {
				entry, err := sc.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					preload.End()
					return nil, nil, err
				}
				cache.Put(entry.Term, entry, entry.Bytes()+3)
			}
			preload.End()
			stats.Passes = 1 // one sequential sweep of the inverted file
		}
	}
	var results []Result
	acc := accum.NewFlat(int(in.Inner.NumDocs()))
	var ordered []document.Cell // reusable cached-first ordering scratch
	occupancy := tel.Histogram("hvnl.accum.occupancy", telemetry.DefaultSizeBuckets)

	// With a prefilter, candidate outer documents whose signature is
	// disjoint from the inner root aggregate are skipped before the
	// probe: their result row is empty by proof, and (with an outer
	// sidecar) their pages are never read.
	var opf *outerPrefilter
	if pf != nil {
		filter := startPhase(tel, trace, telemetry.PhaseSetup, "hvnl.prefilter")
		opf, err = newOuterPrefilter(in, pf, stats)
		filter.End()
		if err != nil {
			return nil, nil, err
		}
	}

	// Each outer document is fully processed before the next is read, so
	// the reuse path applies: one arena document for the whole sweep.
	probe := startPhase(tel, trace, telemetry.PhaseProbe, "hvnl.outer-sweep")
	var outer collection.DocIterator
	if opf == nil {
		outer = in.Outer.Documents()
	}
	for {
		var d2 *document.Document
		if opf != nil {
			var skippedID uint32
			var skipped bool
			d2, skippedID, skipped, err = opf.next()
			if err == io.EOF {
				break
			}
			if err != nil {
				probe.End()
				return nil, nil, err
			}
			if skipped {
				stats.OuterDocs++
				results = append(results, Result{Outer: skippedID, Matches: emptyMatches()})
				continue
			}
		} else {
			d2, err = collection.NextReuse(outer)
			if err == io.EOF {
				break
			}
			if err != nil {
				probe.End()
				return nil, nil, err
			}
		}
		stats.OuterDocs++
		accBefore := stats.Accumulations

		// Order terms: cached entries first (the paper's reuse
		// optimization), then the rest in term order. Cells are already
		// term-sorted, so a stable two-pass split needs no sort and no
		// per-document allocation.
		ordered = ordered[:0]
		for _, c := range d2.Cells {
			if cache.Contains(c.Term) {
				ordered = append(ordered, c)
			}
		}
		for _, c := range d2.Cells {
			if !cache.Contains(c.Term) {
				ordered = append(ordered, c)
			}
		}

		for _, c := range ordered {
			if !index.Contains(c.Term) {
				continue // term does not appear in C1
			}
			entry, ok := cache.Get(c.Term)
			if !ok {
				entry, err = in.InnerInv.FetchEntry(c.Term)
				if err != nil {
					probe.End()
					return nil, nil, err
				}
				stats.EntryFetches++
				// Cache charge: packed entry size plus the 3-byte term
				// list slot.
				cache.Put(c.Term, entry, entry.Bytes()+3)
			}
			factor := scorer.TermFactor(c.Term)
			if factor == 0 {
				continue
			}
			w := float64(c.Weight)
			for _, cell := range entry.Cells {
				acc.Add(cell.Number, w*float64(cell.Weight)*factor)
			}
			stats.Accumulations += int64(len(entry.Cells))
		}

		if pf != nil && stats.Accumulations == accBefore {
			stats.Prefilter.FalsePasses++
		}
		occupancy.Observe(int64(acc.Len()))
		tk := topk.New(opts.Lambda)
		acc.ForEach(func(d1 uint32, raw float64) {
			tk.Offer(d1, scorer.Finalize(d2.ID, d1, raw))
		})
		results = append(results, Result{Outer: d2.ID, Matches: tk.Results()})

		if mem := cache.Used() + btreeBytes + accBytes + outerDocBytes; mem > stats.PeakMemoryBytes {
			stats.PeakMemoryBytes = mem
		}
		acc.Reset()
	}
	probe.End()

	stats.Cache = cache.Stats()
	stats.IO = track.delta()
	stats.Cost = stats.IO.Cost(alpha(invFile))
	recordJoinStats(tel, stats)
	return results, stats, nil
}
