package core

import (
	"fmt"
	"sync"
	"testing"

	"textjoin/internal/iosim"
	"textjoin/internal/signature"
)

// This file extends the differential harness to the concurrency axis:
// any number of view-bound joins running at once must each produce
// results and per-request Stats byte-identical to the same request run
// serially through a view of its own. That is the contract the serving
// layer relies on to admit overlapping /join requests.

// viewRequest is one simulated /join request: a join entry point plus
// the per-request option knobs the server varies (prefilter on/off).
type viewRequest struct {
	name      string
	run       func(in Inputs, opts Options) ([]Result, *Stats, error)
	prefilter bool
}

// viewRequests is the request mix: every harness variant (three
// algorithms, serial and parallel at several worker counts) plus
// prefiltered runs of the entry points that honor Options.Prefilter —
// eleven requests, comfortably past the N>=8 the serving layer needs.
func viewRequests() []viewRequest {
	var reqs []viewRequest
	for _, v := range diffVariants() {
		reqs = append(reqs, viewRequest{name: v.name, run: v.run})
	}
	reqs = append(reqs,
		viewRequest{name: "hhnl-pf", run: JoinHHNL, prefilter: true},
		viewRequest{name: "hvnl-pf", run: JoinHVNL, prefilter: true},
	)
	return reqs
}

// preloadIndexes forces both inverted files' one-time term-index loads
// (normally triggered by the first WithView and charged to the shared
// files once) and then clears the disk counters, so stats measured
// afterwards cover pure join I/O in every pass being compared.
func preloadIndexes(tb testing.TB, e *env) {
	tb.Helper()
	if _, err := e.inv1.LoadIndex(); err != nil {
		tb.Fatal(err)
	}
	if _, err := e.inv2.LoadIndex(); err != nil {
		tb.Fatal(err)
	}
	e.disk.ResetStats()
}

// runOnView executes one request on a fresh view of the env's disk and
// returns its results and Stats. The view is closed before returning,
// so its counters have merged into the shared disk by the time the
// caller inspects aggregate stats.
func runOnView(e *env, req viewRequest, opts Options, pf *Prefilter) ([]Result, *Stats, error) {
	v := e.disk.View()
	defer v.Close()
	in, err := e.inputs().WithView(v)
	if err != nil {
		return nil, nil, fmt.Errorf("binding view: %w", err)
	}
	if req.prefilter {
		opts.Prefilter = pf
	}
	return req.run(in, opts)
}

// TestConcurrentViewsMatchSerial is the tentpole check: on every shape,
// the full request mix run concurrently (each request on its own view)
// must return results and per-request Stats identical to the same
// requests run one at a time. Run under -race this also proves the
// view-bound read path is data-race free.
func TestConcurrentViewsMatchSerial(t *testing.T) {
	for _, shape := range diffShapes() {
		shape := shape
		t.Run(shape.name, func(t *testing.T) {
			e := buildDiffEnv(t, shape, 1)
			pf := buildTestPrefilter(t, e, signature.Config{})
			preloadIndexes(t, e)
			reqs := viewRequests()
			opts := shape.options()

			// Serial reference pass: one view per request, in order.
			serialBase := e.disk.Stats()
			wantRes := make([][]Result, len(reqs))
			wantSt := make([]*Stats, len(reqs))
			for i, req := range reqs {
				res, st, err := runOnView(e, req, opts, pf)
				if err != nil {
					t.Fatalf("%s serial: %v", req.name, err)
				}
				wantRes[i], wantSt[i] = res, st
			}
			serialDelta := statsDelta(serialBase, e.disk.Stats())

			// Concurrent pass: every request at once, fresh views.
			concBase := e.disk.Stats()
			gotRes := make([][]Result, len(reqs))
			gotSt := make([]*Stats, len(reqs))
			errs := make([]error, len(reqs))
			var wg sync.WaitGroup
			for i, req := range reqs {
				i, req := i, req
				wg.Add(1)
				go func() {
					defer wg.Done()
					gotRes[i], gotSt[i], errs[i] = runOnView(e, req, opts, pf)
				}()
			}
			wg.Wait()
			concDelta := statsDelta(concBase, e.disk.Stats())

			for i, req := range reqs {
				if errs[i] != nil {
					t.Fatalf("%s concurrent: %v", req.name, errs[i])
				}
				if err := sameResults(wantRes[i], gotRes[i]); err != nil {
					t.Errorf("%s: concurrent results diverge: %v", req.name, err)
				}
				if *gotSt[i] != *wantSt[i] {
					t.Errorf("%s: concurrent Stats diverge:\nserial:     %+v\nconcurrent: %+v",
						req.name, *wantSt[i], *gotSt[i])
				}
			}

			// The merged disk accounting must not lose or invent a
			// single read: both passes did the same work, so the
			// aggregate deltas agree exactly.
			if concDelta != serialDelta {
				t.Errorf("aggregate disk stats diverge:\nserial:     %+v\nconcurrent: %+v",
					serialDelta, concDelta)
			}
		})
	}
}

// statsDelta subtracts two disk-stat snapshots field by field.
func statsDelta(before, after iosim.Stats) iosim.Stats {
	return iosim.Stats{
		SeqReads:  after.SeqReads - before.SeqReads,
		RandReads: after.RandReads - before.RandReads,
		Writes:    after.Writes - before.Writes,
	}
}

// TestViewBindingIsolatesSharedHeads verifies that a join on a bound
// view leaves the shared per-file heads untouched: a serial join on the
// base inputs afterwards sees pristine head positions, exactly as if
// the view-bound join had never happened.
func TestViewBindingIsolatesSharedHeads(t *testing.T) {
	shape := diffShapes()[0]

	// Reference: serial join on a fresh env's shared files.
	ref := buildDiffEnv(t, shape, 1)
	preloadIndexes(t, ref)
	wantRes, wantSt, err := JoinHVNL(ref.inputs(), shape.options())
	if err != nil {
		t.Fatal(err)
	}

	// Same join on a second env, but after a view-bound join has
	// already run (and closed). Head positions must be unchanged.
	e := buildDiffEnv(t, shape, 1)
	preloadIndexes(t, e)
	if _, _, err := runOnView(e, viewRequest{name: "warm", run: JoinVVM}, shape.options(), nil); err != nil {
		t.Fatal(err)
	}
	e.disk.ResetStats()
	gotRes, gotSt, err := JoinHVNL(e.inputs(), shape.options())
	if err != nil {
		t.Fatal(err)
	}
	if err := sameResults(wantRes, gotRes); err != nil {
		t.Fatalf("results changed after view-bound join: %v", err)
	}
	if *gotSt != *wantSt {
		t.Fatalf("Stats changed after view-bound join:\nwant %+v\ngot  %+v", *wantSt, *gotSt)
	}
}
