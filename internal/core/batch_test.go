package core

import (
	"errors"
	"math/rand"
	"testing"

	"textjoin/internal/collection"
	"textjoin/internal/document"
)

// Joining a memory-resident query batch against a stored collection — the
// paper's batch-query scenario. HHNL and HVNL apply; VVM cannot (no
// inverted file exists for the batch).
func TestBatchJoin(t *testing.T) {
	e := buildEnv(t, 51, 30, 1, 50, 12, 256)
	r := rand.New(rand.NewSource(51))
	queries := randomDocs(r, 8, 50, 10)
	batch, err := collection.NewBatch("queries", queries)
	if err != nil {
		t.Fatal(err)
	}
	in := Inputs{Outer: batch, Inner: e.c1, InnerInv: e.inv1}
	opts := Options{Lambda: 4, MemoryPages: 200}

	want := reference(t, batch, e.c1, 4, rawScorer(t))

	hh, hhStats, err := JoinHHNL(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := sameResults(hh, want); err != nil {
		t.Fatal(err)
	}
	hv, _, err := JoinHVNL(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := sameResults(hv, want); err != nil {
		t.Fatal(err)
	}
	// The batch itself costs no reads: HHNL's I/O is exactly the inner
	// scans.
	d1 := e.c1.Stats().D
	if got := hhStats.IO.Reads(); got != int64(hhStats.Passes)*d1 {
		t.Errorf("HHNL reads = %d, want passes %d × D1 %d", got, hhStats.Passes, d1)
	}

	// VVM is inapplicable for a batch.
	if _, _, err := JoinVVM(Inputs{Outer: batch, Inner: e.c1, InnerInv: e.inv1, OuterInv: e.inv2}, opts); !errors.Is(err, ErrMissingInput) {
		t.Errorf("VVM on batch err = %v, want ErrMissingInput", err)
	}
}

func TestBatchJoinSparseIDs(t *testing.T) {
	// Batch ids need not be dense; results keep the original ids.
	e := buildEnv(t, 52, 15, 1, 30, 8, 256)
	queries := []*document.Document{
		document.New(100, map[uint32]int{1: 2, 5: 1}),
		document.New(7, map[uint32]int{2: 1}),
	}
	batch, err := collection.NewBatch("q", queries)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := JoinHVNL(Inputs{Outer: batch, Inner: e.c1, InnerInv: e.inv1}, Options{Lambda: 2, MemoryPages: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].Outer != 100 || res[1].Outer != 7 {
		t.Errorf("results = %+v", res)
	}
}

func TestBatchIntegratedChoosesApplicable(t *testing.T) {
	e := buildEnv(t, 53, 20, 1, 40, 10, 256)
	r := rand.New(rand.NewSource(53))
	batch, err := collection.NewBatch("q", randomDocs(r, 3, 40, 8))
	if err != nil {
		t.Fatal(err)
	}
	in := Inputs{Outer: batch, Inner: e.c1, InnerInv: e.inv1}
	res, st, dec, err := JoinIntegrated(in, Options{Lambda: 3, MemoryPages: 200})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Chosen == VVM {
		t.Errorf("integrated chose VVM for a batch")
	}
	if len(res) != 3 || st.Algorithm != dec.Chosen {
		t.Errorf("res=%d alg=%v chosen=%v", len(res), st.Algorithm, dec.Chosen)
	}
}

func TestNewBatchValidation(t *testing.T) {
	if _, err := collection.NewBatch("q", []*document.Document{
		document.New(1, map[uint32]int{1: 1}),
		document.New(1, map[uint32]int{2: 1}),
	}); !errors.Is(err, collection.ErrDuplicateDoc) {
		t.Errorf("duplicate ids err = %v", err)
	}
	bad := &document.Document{ID: 1, Cells: []document.Cell{{Term: 5, Weight: 1}, {Term: 3, Weight: 1}}}
	if _, err := collection.NewBatch("q", []*document.Document{bad}); err == nil {
		t.Error("invalid doc: want error")
	}
}
