package core

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"textjoin/internal/iosim"
	"textjoin/internal/telemetry"
)

// Every join algorithm must propagate storage errors instead of masking
// them or returning partial results.
func TestJoinsPropagateStorageFaults(t *testing.T) {
	for _, alg := range []Algorithm{HHNL, HVNL, VVM} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			e := buildEnv(t, 31, 20, 20, 40, 10, 128)
			// Fail the 10th read of any file once the join starts.
			e.disk.InjectFaults(iosim.FaultPlan{FailAfterReads: 10, Repeat: true})
			res, _, err := Join(alg, e.inputs(), Options{Lambda: 3, MemoryPages: 100})
			if !errors.Is(err, iosim.ErrInjected) {
				t.Fatalf("err = %v, want ErrInjected", err)
			}
			if res != nil {
				t.Errorf("partial results returned alongside error")
			}
		})
	}
}

func TestBackwardHHNLPropagatesFaults(t *testing.T) {
	e := buildEnv(t, 32, 20, 20, 40, 10, 128)
	e.disk.InjectFaults(iosim.FaultPlan{FailAfterReads: 5, Repeat: true})
	_, _, err := JoinHHNL(e.inputs(), Options{Lambda: 3, MemoryPages: 100, Backward: true})
	if !errors.Is(err, iosim.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
}

func TestHVNLPropagatesBTreeFaults(t *testing.T) {
	e := buildEnv(t, 33, 20, 20, 40, 10, 128)
	// Fail reads of the B+tree file specifically: LoadIndex must fail.
	e.disk.InjectFaults(iosim.FaultPlan{FailFile: "c1.bt", Repeat: true})
	_, _, err := JoinHVNL(e.inputs(), Options{Lambda: 3, MemoryPages: 100})
	if !errors.Is(err, iosim.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
}

func TestVVMPropagatesSecondFileFaults(t *testing.T) {
	e := buildEnv(t, 34, 20, 20, 40, 10, 128)
	e.disk.InjectFaults(iosim.FaultPlan{FailFile: "c2.inv", FailAfterReads: 1, Repeat: true})
	_, _, err := JoinVVM(e.inputs(), Options{Lambda: 3, MemoryPages: 100})
	if !errors.Is(err, iosim.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
}

// waitGoroutines polls until the goroutine count drops back to at most
// want or the deadline passes, absorbing scheduler lag without sleeps of
// fixed length.
func waitGoroutines(tb testing.TB, want int) {
	tb.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > want && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > want {
		tb.Errorf("goroutine leak: %d running, want <= %d", n, want)
	}
}

// The parallel joins must propagate storage faults exactly like their
// serial counterparts: a clean wrapped error, no partial results, no
// leaked worker goroutines — and an attached collector must record the
// storage-level fault event.
func TestParallelJoinsPropagateStorageFaults(t *testing.T) {
	variants := []struct {
		name string
		run  func(Inputs, Options, int) ([]Result, *Stats, error)
	}{
		{"hhnl", JoinHHNLParallel},
		{"hvnl", JoinHVNLParallel},
		{"vvm", JoinVVMParallel},
	}
	for _, v := range variants {
		for _, workers := range []int{2, 7} {
			v, workers := v, workers
			t.Run(fmt.Sprintf("%s/w%d", v.name, workers), func(t *testing.T) {
				before := runtime.NumGoroutine()
				e := buildEnv(t, 36, 20, 20, 40, 10, 128)
				tel := telemetry.New()
				e.disk.SetCollector(tel)
				e.disk.InjectFaults(iosim.FaultPlan{FailAfterReads: 5, Repeat: true})
				res, _, err := v.run(e.inputs(), Options{Lambda: 3, MemoryPages: 100, Telemetry: tel}, workers)
				if !errors.Is(err, iosim.ErrInjected) {
					t.Fatalf("err = %v, want ErrInjected", err)
				}
				if res != nil {
					t.Error("partial results returned alongside error")
				}
				found := false
				for _, en := range tel.Snapshot().Trace {
					if en.Kind == telemetry.KindEvent && en.Phase == telemetry.PhaseIO && strings.HasPrefix(en.Name, "fault.") {
						found = true
					}
				}
				if !found {
					t.Error("no io fault event in the telemetry trace")
				}
				waitGoroutines(t, before)
			})
		}
	}
}

// A fault confined to the B+tree file must stop the parallel HVNL before
// any worker spawns, and still leak nothing.
func TestParallelHVNLPropagatesBTreeFaults(t *testing.T) {
	before := runtime.NumGoroutine()
	e := buildEnv(t, 37, 20, 20, 40, 10, 128)
	e.disk.InjectFaults(iosim.FaultPlan{FailFile: "c1.bt", Repeat: true})
	_, _, err := JoinHVNLParallel(e.inputs(), Options{Lambda: 3, MemoryPages: 100}, 4)
	if !errors.Is(err, iosim.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	waitGoroutines(t, before)
}

// A fault that fires during one run must not poison a later run after the
// plan is disarmed (no hidden state in the algorithms).
func TestJoinRecoversAfterDisarm(t *testing.T) {
	e := buildEnv(t, 35, 15, 15, 30, 8, 128)
	e.disk.InjectFaults(iosim.FaultPlan{FailAfterReads: 3, Repeat: true})
	if _, _, err := JoinHHNL(e.inputs(), Options{Lambda: 3, MemoryPages: 100}); err == nil {
		t.Fatal("expected injected failure")
	}
	e.disk.InjectFaults(iosim.FaultPlan{})
	res, _, err := JoinHHNL(e.inputs(), Options{Lambda: 3, MemoryPages: 100})
	if err != nil {
		t.Fatalf("after disarm: %v", err)
	}
	want := reference(t, e.c2, e.c1, 3, rawScorer(t))
	if err := sameResults(res, want); err != nil {
		t.Fatal(err)
	}
}
