package core

import (
	"errors"
	"testing"

	"textjoin/internal/iosim"
)

// Every join algorithm must propagate storage errors instead of masking
// them or returning partial results.
func TestJoinsPropagateStorageFaults(t *testing.T) {
	for _, alg := range []Algorithm{HHNL, HVNL, VVM} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			e := buildEnv(t, 31, 20, 20, 40, 10, 128)
			// Fail the 10th read of any file once the join starts.
			e.disk.InjectFaults(iosim.FaultPlan{FailAfterReads: 10, Repeat: true})
			res, _, err := Join(alg, e.inputs(), Options{Lambda: 3, MemoryPages: 100})
			if !errors.Is(err, iosim.ErrInjected) {
				t.Fatalf("err = %v, want ErrInjected", err)
			}
			if res != nil {
				t.Errorf("partial results returned alongside error")
			}
		})
	}
}

func TestBackwardHHNLPropagatesFaults(t *testing.T) {
	e := buildEnv(t, 32, 20, 20, 40, 10, 128)
	e.disk.InjectFaults(iosim.FaultPlan{FailAfterReads: 5, Repeat: true})
	_, _, err := JoinHHNL(e.inputs(), Options{Lambda: 3, MemoryPages: 100, Backward: true})
	if !errors.Is(err, iosim.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
}

func TestHVNLPropagatesBTreeFaults(t *testing.T) {
	e := buildEnv(t, 33, 20, 20, 40, 10, 128)
	// Fail reads of the B+tree file specifically: LoadIndex must fail.
	e.disk.InjectFaults(iosim.FaultPlan{FailFile: "c1.bt", Repeat: true})
	_, _, err := JoinHVNL(e.inputs(), Options{Lambda: 3, MemoryPages: 100})
	if !errors.Is(err, iosim.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
}

func TestVVMPropagatesSecondFileFaults(t *testing.T) {
	e := buildEnv(t, 34, 20, 20, 40, 10, 128)
	e.disk.InjectFaults(iosim.FaultPlan{FailFile: "c2.inv", FailAfterReads: 1, Repeat: true})
	_, _, err := JoinVVM(e.inputs(), Options{Lambda: 3, MemoryPages: 100})
	if !errors.Is(err, iosim.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
}

// A fault that fires during one run must not poison a later run after the
// plan is disarmed (no hidden state in the algorithms).
func TestJoinRecoversAfterDisarm(t *testing.T) {
	e := buildEnv(t, 35, 15, 15, 30, 8, 128)
	e.disk.InjectFaults(iosim.FaultPlan{FailAfterReads: 3, Repeat: true})
	if _, _, err := JoinHHNL(e.inputs(), Options{Lambda: 3, MemoryPages: 100}); err == nil {
		t.Fatal("expected injected failure")
	}
	e.disk.InjectFaults(iosim.FaultPlan{})
	res, _, err := JoinHHNL(e.inputs(), Options{Lambda: 3, MemoryPages: 100})
	if err != nil {
		t.Fatalf("after disarm: %v", err)
	}
	want := reference(t, e.c2, e.c1, 3, rawScorer(t))
	if err := sameResults(res, want); err != nil {
		t.Fatal(err)
	}
}
