package core

import (
	"textjoin/internal/collection"
	"textjoin/internal/iosim"
)

// WithView returns a copy of the inputs with every storage-backed input
// rebound to the read-only I/O view v: the outer reader, the inner
// collection and both inverted files then perform all their page reads
// through the view's private head positions and counters. Join
// algorithms running on the returned inputs never touch shared head
// state, so any number of them can run concurrently — each producing
// results and Stats byte-identical to a serial run on a parked disk.
//
// Binding eagerly loads the inverted files' term indexes (idempotent;
// charged to the shared files once) so no session performs shared-file
// I/O mid-join. A nil view returns the inputs unchanged.
func (in Inputs) WithView(v *iosim.View) (Inputs, error) {
	if v == nil {
		return in, nil
	}
	out := in
	out.Outer = collection.ReaderWithView(in.Outer, v)
	out.Inner = in.Inner.WithView(v)
	var err error
	if out.InnerInv, err = in.InnerInv.WithView(v); err != nil {
		return Inputs{}, err
	}
	if out.OuterInv, err = in.OuterInv.WithView(v); err != nil {
		return Inputs{}, err
	}
	return out, nil
}
