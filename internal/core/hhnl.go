package core

import (
	"fmt"
	"io"

	"textjoin/internal/collection"
	"textjoin/internal/document"
	"textjoin/internal/iosim"
	"textjoin/internal/signature"
	"textjoin/internal/telemetry"
	"textjoin/internal/topk"
)

// JoinHHNL evaluates the join with the Horizontal–Horizontal Nested Loop
// of Section 4.1: read the next X documents of C2 into memory, scan C1,
// and while a C1 document is in memory compute its similarity with every
// resident C2 document, tracking the λ largest similarities per C2
// document.
//
// The batch size X follows the paper's memory policy "letting the outer
// collection use as much memory space as possible":
//
//	X = (B − ⌈S1⌉) / (S2 + 4λ/P)
//
// realized in exact bytes: ⌈S1⌉ pages are reserved to hold one inner
// document, and each outer document charges its packed size plus 4λ bytes
// for its similarity slots.
//
// With Options.Backward the loop order flips (an extension the paper
// defers to the technical report): blocks of C1 are held in memory while
// C2 is scanned once per block, with all C2 trackers kept across blocks.
//
// With Options.Prefilter the inner scan of each batch skips clusters,
// pages and documents whose aggregate signatures are disjoint from the
// batch's OR-signature — a provably zero similarity for every resident
// outer document, so results are byte-identical. The backward variant
// ignores the prefilter (its resident side is the inner collection).
func JoinHHNL(in Inputs, opts Options) ([]Result, *Stats, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, nil, err
	}
	if in.Outer == nil || in.Inner == nil {
		return nil, nil, fmt.Errorf("%w: HHNL needs both document collections", ErrMissingInput)
	}
	scorer, err := in.scorer(opts)
	if err != nil {
		return nil, nil, err
	}
	if opts.Backward {
		return hhnlBackward(in, opts, scorer)
	}
	return hhnlForward(in, opts, scorer)
}

// hhnlBatchBytes returns the outer-batch byte budget and the per-document
// overhead for the λ similarity slots.
func hhnlBatchBytes(in Inputs, opts Options) (budget int64, slotBytes int64, err error) {
	pageSize := int64(in.Inner.File().PageSize())
	total := opts.MemoryPages * pageSize
	// Reserve ⌈S1⌉ pages for the resident inner document.
	reserve := iosim.PagesForBytes(int64(in.Inner.AvgDocBytes()+0.999), int(pageSize)) * pageSize
	if reserve == 0 {
		reserve = pageSize
	}
	budget = total - reserve
	slotBytes = 4 * int64(opts.Lambda)
	if budget <= 0 {
		return 0, 0, fmt.Errorf("%w: B=%d pages cannot hold one inner document (%d bytes reserved)",
			ErrInsufficientMemory, opts.MemoryPages, reserve)
	}
	return budget, slotBytes, nil
}

func hhnlForward(in Inputs, opts Options, scorer *document.Scorer) ([]Result, *Stats, error) {
	stats := &Stats{Algorithm: HHNL, InnerDocs: in.Inner.NumDocs()}
	budget, slotBytes, err := hhnlBatchBytes(in, opts)
	if err != nil {
		return nil, nil, err
	}
	pf, err := activePrefilter(in, opts)
	if err != nil {
		return nil, nil, err
	}
	var (
		sigCfg signature.Config
		q      signature.Sig
		need   []bool
	)
	if pf != nil {
		stats.Prefilter.Enabled = true
		sigCfg = pf.Inner.Config()
	}
	track := trackIO(in.Outer.File(), in.Inner.File())
	tel, trace := opts.Telemetry, opts.Trace

	var results []Result
	outer := in.Outer.Documents()
	var pending *document.Document // first doc of the next batch, already read
	done := false
	for !done {
		// Fill the next batch of outer documents within the budget.
		fill := startPhase(tel, trace, telemetry.PhaseScan, "hhnl.fill-batch")
		var batch []*document.Document
		var used int64
		for {
			var d *document.Document
			if pending != nil {
				d, pending = pending, nil
			} else {
				var err error
				d, err = outer.Next()
				if err == io.EOF {
					done = true
					break
				}
				if err != nil {
					fill.End()
					return nil, nil, err
				}
			}
			cost := d.EncodedSize() + slotBytes
			if used+cost > budget && len(batch) > 0 {
				pending = d
				break
			}
			if used+cost > budget {
				fill.End()
				return nil, nil, fmt.Errorf("%w: outer document %d (%d bytes) exceeds the batch budget %d",
					ErrInsufficientMemory, d.ID, cost, budget)
			}
			batch = append(batch, d)
			used += cost
		}
		fill.End()
		if len(batch) == 0 {
			break
		}
		stats.Passes++
		if used > stats.PeakMemoryBytes {
			stats.PeakMemoryBytes = used
		}
		stats.OuterDocs += int64(len(batch))

		trackers := make([]*topk.TopK, len(batch))
		for i := range trackers {
			trackers[i] = topk.New(opts.Lambda)
		}
		// With a prefilter, disqualify inner clusters, pages and
		// documents against the batch's OR-signature before the scan —
		// the filtered scan then never reads the skipped pages.
		var nextInner func() (*document.Document, error)
		if pf != nil {
			filter := startPhase(tel, trace, telemetry.PhaseScan, "hhnl.prefilter")
			q = batchSig(sigCfg, batch, q)
			need, err = sidecarNeed(pf.Inner, in.Inner, q, need, &stats.Prefilter)
			filter.End()
			if err != nil {
				return nil, nil, err
			}
			nextInner = in.Inner.ScanFiltered(func(id uint32) bool { return need[id] }).NextReuse
		} else {
			nextInner = in.Inner.Scan().NextReuse
		}
		// One full scan of the inner collection per batch. Each inner
		// document is consumed before the next is read, so the scan's
		// reuse arena suffices — the hot loop allocates nothing.
		score := startPhase(tel, trace, telemetry.PhaseScore, "hhnl.inner-scan")
		for {
			d1, err := nextInner()
			if err == io.EOF {
				break
			}
			if err != nil {
				score.End()
				return nil, nil, err
			}
			anyHit := false
			for i, d2 := range batch {
				sim := scorer.Score(d2, d1)
				stats.Comparisons++
				if sim != 0 {
					anyHit = true
				}
				trackers[i].Offer(d1.ID, sim)
			}
			if pf != nil && !anyHit {
				stats.Prefilter.FalsePasses++
			}
		}
		score.End()
		flush := startPhase(tel, trace, telemetry.PhaseFlush, "hhnl.flush-batch")
		for i, d2 := range batch {
			results = append(results, Result{Outer: d2.ID, Matches: trackers[i].Results()})
		}
		flush.End()
	}
	stats.IO = track.delta()
	stats.Cost = stats.IO.Cost(alpha(in.Inner.File()))
	recordJoinStats(tel, stats)
	return results, stats, nil
}

func hhnlBackward(in Inputs, opts Options, scorer *document.Scorer) ([]Result, *Stats, error) {
	stats := &Stats{Algorithm: HHNL, InnerDocs: in.Inner.NumDocs()}
	// Swap roles for batch sizing: blocks of C1 are resident, one C2
	// document at a time streams past, and every C2 document keeps a λ
	// tracker alive for the whole join.
	pageSize := int64(in.Inner.File().PageSize())
	total := opts.MemoryPages * pageSize
	reserve := iosim.PagesForBytes(int64(in.Outer.AvgDocBytes()+0.999), int(pageSize)) * pageSize
	if reserve == 0 {
		reserve = pageSize
	}
	trackerBytes := 4 * int64(opts.Lambda) * in.Outer.NumDocs()
	budget := total - reserve - trackerBytes
	if budget <= 0 {
		return nil, nil, fmt.Errorf("%w: B=%d pages cannot hold the %d outer trackers plus one outer document",
			ErrInsufficientMemory, opts.MemoryPages, in.Outer.NumDocs())
	}
	track := trackIO(in.Outer.File(), in.Inner.File())
	tel, trace := opts.Telemetry, opts.Trace

	trackers := make(map[uint32]*topk.TopK)
	var order []uint32
	inner := in.Inner.Scan()
	var pending *document.Document
	done := false
	firstPass := true
	for !done {
		fill := startPhase(tel, trace, telemetry.PhaseScan, "hhnl.backward.fill-batch")
		var batch []*document.Document
		var used int64
		for {
			var d *document.Document
			if pending != nil {
				d, pending = pending, nil
			} else {
				var err error
				d, err = inner.Next()
				if err == io.EOF {
					done = true
					break
				}
				if err != nil {
					fill.End()
					return nil, nil, err
				}
			}
			cost := d.EncodedSize()
			if used+cost > budget && len(batch) > 0 {
				pending = d
				break
			}
			if used+cost > budget {
				fill.End()
				return nil, nil, fmt.Errorf("%w: inner document %d (%d bytes) exceeds the batch budget %d",
					ErrInsufficientMemory, d.ID, cost, budget)
			}
			batch = append(batch, d)
			used += cost
		}
		fill.End()
		if len(batch) == 0 {
			break
		}
		stats.Passes++
		if used+trackerBytes > stats.PeakMemoryBytes {
			stats.PeakMemoryBytes = used + trackerBytes
		}

		// The streamed outer side is consumed one document at a time, so
		// the reuse path applies (the resident inner batch, by contrast,
		// is built from stable Next documents above).
		score := startPhase(tel, trace, telemetry.PhaseScore, "hhnl.backward.outer-scan")
		outerIt := in.Outer.Documents()
		for {
			d2, err := collection.NextReuse(outerIt)
			if err == io.EOF {
				break
			}
			if err != nil {
				score.End()
				return nil, nil, err
			}
			tk := trackers[d2.ID]
			if tk == nil {
				tk = topk.New(opts.Lambda)
				trackers[d2.ID] = tk
				order = append(order, d2.ID)
			}
			if firstPass {
				stats.OuterDocs++
			}
			for _, d1 := range batch {
				sim := scorer.Score(d2, d1)
				stats.Comparisons++
				tk.Offer(d1.ID, sim)
			}
		}
		score.End()
		firstPass = false
	}
	if stats.Passes == 0 {
		// Empty inner collection: every outer document still yields a
		// result row, with no matches.
		outerIt := in.Outer.Documents()
		for {
			d2, err := collection.NextReuse(outerIt)
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, nil, err
			}
			order = append(order, d2.ID)
			trackers[d2.ID] = topk.New(opts.Lambda)
			stats.OuterDocs++
		}
	}
	flush := startPhase(tel, trace, telemetry.PhaseFinalize, "hhnl.backward.finalize")
	results := make([]Result, 0, len(order))
	for _, id := range order {
		results = append(results, Result{Outer: id, Matches: trackers[id].Results()})
	}
	flush.End()
	stats.IO = track.delta()
	stats.Cost = stats.IO.Cost(alpha(in.Inner.File()))
	recordJoinStats(tel, stats)
	return results, stats, nil
}
