package core

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"textjoin/internal/accum"
	"textjoin/internal/codec"
	"textjoin/internal/collection"
	"textjoin/internal/document"
	"textjoin/internal/entrycache"
	"textjoin/internal/iosim"
	"textjoin/internal/telemetry"
	"textjoin/internal/topk"
)

// hvnlWork is one item on a worker's channel. An accumulation item
// (cells != nil) carries the worker-owned contiguous sub-slice of a
// fetched entry's i-cells together with the outer cell weight w and the
// term factor, kept separate so the worker computes exactly the serial
// w·float64(cell.Weight)·factor product — same associativity, hence
// byte-identical float sums. A flush item (cells == nil) marks the end of
// an outer document: the worker finalizes its block's top-λ into
// slot.perWorker and resets its shard, so the pipeline never needs a
// per-document barrier.
type hvnlWork struct {
	factor float64
	w      float64
	cells  []codec.Cell
	slot   *hvnlDocSlot
}

// hvnlDocSlot collects one outer document's per-worker top-λ candidates.
// Workers write disjoint indices, so no locking is needed; the final
// merge runs after all workers have drained.
type hvnlDocSlot struct {
	outer     uint32
	perWorker [][]Match
}

// JoinHVNLParallel is HVNL with the probe-side scoring fanned out over
// workers while every storage access stays on the calling goroutine, in
// the exact serial order: the B+tree load, the sequential-preload
// decision, every cache probe, every entry fetch and every cache
// insertion happen as in JoinHVNL, so the page counts, the
// sequential/random split, and the cache/fetch statistics are
// byte-identical to the serial algorithm.
//
// What fans out is the accumulation: worker w owns the contiguous block
// of inner document ids [blocks[w], blocks[w+1]) and keeps a private
// accum.Flat shard over it. For each term of the outer document the
// coordinator splits the fetched entry's (ascending) i-cells by owner
// with binary searches — the same zero-copy sub-slice routing as the
// parallel VVM — and sends each worker only its own range. Entries stay
// alive while routed sub-slices are in flight (they alias the entry's
// cell array, which the garbage collector therefore pins), so cache
// eviction of an entry whose cells a worker is still scanning is safe.
//
// Each worker sees its items in coordinator order, so per inner document
// the additions form the same ordered subsequence as the serial loop and
// the float sums are bit-identical; the per-document flush finalizes each
// block's top-λ with the serial Finalize, and merging the per-worker
// candidates reproduces the global top-λ because the tracker's order
// (similarity descending, document ascending) is total.
func JoinHVNLParallel(in Inputs, opts Options, workers int) ([]Result, *Stats, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, nil, err
	}
	if in.Outer == nil || in.InnerInv == nil || in.Inner == nil {
		return nil, nil, fmt.Errorf("%w: HVNL needs the outer documents and the inner inverted file", ErrMissingInput)
	}
	nWorkers := resolveWorkers(workers)
	if nWorkers == 1 {
		return JoinHVNL(in, opts)
	}
	scorer, err := in.scorer(opts)
	if err != nil {
		return nil, nil, err
	}
	pf, err := activePrefilter(in, opts)
	if err != nil {
		return nil, nil, err
	}

	invFile := in.InnerInv.File()
	var treeFile *iosim.File
	if in.InnerInv.Tree() != nil {
		treeFile = in.InnerInv.Tree().File()
	}
	track := trackIO(in.Outer.File(), invFile, treeFile)
	tel, trace := opts.Telemetry, opts.Trace

	setup := startPhase(tel, trace, telemetry.PhaseSetup, "hvnlp.load-index")
	index, err := in.InnerInv.LoadIndex()
	setup.End()
	if err != nil {
		return nil, nil, err
	}
	pageSize := int64(invFile.PageSize())
	btreeBytes := index.SizePages(int(pageSize)) * pageSize

	total := opts.MemoryPages * pageSize
	outerDocBytes := iosim.PagesForBytes(int64(in.Outer.AvgDocBytes()+0.999), int(pageSize)) * pageSize
	accBytes := int64(4 * float64(in.Inner.NumDocs()) * opts.Delta)
	cacheBudget := total - outerDocBytes - btreeBytes - accBytes
	if cacheBudget <= 0 {
		return nil, nil, fmt.Errorf("%w: B=%d pages leaves no room for inverted entries (doc %d + btree %d + accumulators %d bytes)",
			ErrInsufficientMemory, opts.MemoryPages, outerDocBytes, btreeBytes, accBytes)
	}

	outerDF := in.Outer.DF
	cache := entrycache.New(cacheBudget, opts.CachePolicy, func(term uint32) int64 { return outerDF(term) })
	cache.SetTelemetry(tel)

	stats := &Stats{Algorithm: HVNL, InnerDocs: in.Inner.NumDocs()}
	if pf != nil {
		stats.Prefilter.Enabled = true
	}

	// Sequential-preload regime, decided and performed exactly as serial.
	invStats := in.InnerInv.Stats()
	totalEntryBytes := invStats.Bytes + 3*invStats.Entries
	if totalEntryBytes > 0 && totalEntryBytes <= cacheBudget {
		var neededPages int64
		for _, cell := range index.Cells() {
			if in.Outer.DF(cell.Term) > 0 {
				p, err := in.InnerInv.EntryPages(cell.Term)
				if err != nil {
					return nil, nil, err
				}
				neededPages += p
			}
		}
		seqCost := float64(invStats.I)
		randCost := float64(neededPages) * invFile.Disk().Alpha()
		if seqCost < randCost {
			preload := startPhase(tel, trace, telemetry.PhaseScan, "hvnlp.preload")
			sc := in.InnerInv.Scan()
			for {
				entry, err := sc.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					preload.End()
					return nil, nil, err
				}
				cache.Put(entry.Term, entry, entry.Bytes()+3)
			}
			preload.End()
			stats.Passes = 1
		}
	}

	// Ownership: worker w owns the contiguous inner-id block
	// [blocks[w], blocks[w+1]) of the dense ids 0..N1-1.
	n1 := int(in.Inner.NumDocs())
	blocks := make([]int, nWorkers+1)
	for w := range blocks {
		blocks[w] = w * n1 / nWorkers
	}

	chans := make([]chan hvnlWork, nWorkers)
	var wg sync.WaitGroup
	for w := 0; w < nWorkers; w++ {
		chans[w] = make(chan hvnlWork, 128)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			idLo := uint32(blocks[w])
			acc := accum.NewFlat(blocks[w+1] - blocks[w])
			for item := range chans[w] {
				if item.cells != nil {
					iw, factor := item.w, item.factor
					for _, cell := range item.cells {
						acc.Add(cell.Number-idLo, iw*float64(cell.Weight)*factor)
					}
					continue
				}
				// Flush: finalize this worker's block for the outer
				// document, then ready the shard for the next one.
				tk := topk.New(opts.Lambda)
				outer := item.slot.outer
				acc.ForEach(func(local uint32, raw float64) {
					d1 := local + idLo
					tk.Offer(d1, scorer.Finalize(outer, d1, raw))
				})
				item.slot.perWorker[w] = tk.Results()
				acc.Reset()
			}
		}(w)
	}
	// finish drains the pipeline; it is safe to call exactly once.
	finish := func() {
		for _, ch := range chans {
			close(ch)
		}
		wg.Wait()
	}

	var slots []*hvnlDocSlot
	var ordered []document.Cell
	// Per-worker routed-cell counts, tracked on the coordinator (the only
	// goroutine that routes) so workers stay contention-free.
	var routed []int64
	if tel != nil {
		routed = make([]int64, nWorkers)
	}

	// Prefilter decisions run on the coordinator exactly as in serial
	// HVNL: same keep vector, same skipped reads, same counters. A
	// skipped document's slot is appended with nothing routed — no
	// worker ever flushes into it, so the merge yields the same empty
	// row the serial skip fabricates.
	var opf *outerPrefilter
	if pf != nil {
		filter := startPhase(tel, trace, telemetry.PhaseSetup, "hvnlp.prefilter")
		opf, err = newOuterPrefilter(in, pf, stats)
		filter.End()
		if err != nil {
			finish()
			return nil, nil, err
		}
	}

	probe := startPhase(tel, trace, telemetry.PhaseProbe, "hvnlp.outer-sweep")
	var outer collection.DocIterator
	if opf == nil {
		outer = in.Outer.Documents()
	}
	for {
		var d2 *document.Document
		if opf != nil {
			var skippedID uint32
			var skipped bool
			d2, skippedID, skipped, err = opf.next()
			if err == io.EOF {
				break
			}
			if err != nil {
				probe.End()
				finish()
				return nil, nil, err
			}
			if skipped {
				stats.OuterDocs++
				slots = append(slots, &hvnlDocSlot{outer: skippedID, perWorker: make([][]Match, nWorkers)})
				continue
			}
		} else {
			d2, err = collection.NextReuse(outer)
			if err == io.EOF {
				break
			}
			if err != nil {
				probe.End()
				finish()
				return nil, nil, err
			}
		}
		stats.OuterDocs++
		accBefore := stats.Accumulations

		// Cached-entries-first term order, exactly as serial.
		ordered = ordered[:0]
		for _, c := range d2.Cells {
			if cache.Contains(c.Term) {
				ordered = append(ordered, c)
			}
		}
		for _, c := range d2.Cells {
			if !cache.Contains(c.Term) {
				ordered = append(ordered, c)
			}
		}

		for _, c := range ordered {
			if !index.Contains(c.Term) {
				continue
			}
			entry, ok := cache.Get(c.Term)
			if !ok {
				entry, err = in.InnerInv.FetchEntry(c.Term)
				if err != nil {
					probe.End()
					finish()
					return nil, nil, err
				}
				stats.EntryFetches++
				cache.Put(c.Term, entry, entry.Bytes()+3)
			}
			factor := scorer.TermFactor(c.Term)
			if factor == 0 {
				continue
			}
			w := float64(c.Weight)
			// Route each worker its own id range: cells and blocks both
			// ascend, so one forward sweep of binary searches splits the
			// cell list without copying.
			cells := entry.Cells
			i := 0
			for wk := 0; wk < nWorkers && i < len(cells); wk++ {
				lo, hi := blocks[wk], blocks[wk+1]
				if lo == hi {
					continue
				}
				start := i + sort.Search(len(cells)-i, func(k int) bool { return int(cells[i+k].Number) >= lo })
				end := start + sort.Search(len(cells)-start, func(k int) bool { return int(cells[start+k].Number) >= hi })
				i = end
				if start < end {
					if routed != nil {
						routed[wk] += int64(end - start)
					}
					chans[wk] <- hvnlWork{factor: factor, w: w, cells: cells[start:end]}
				}
			}
			stats.Accumulations += int64(len(entry.Cells))
		}

		if pf != nil && stats.Accumulations == accBefore {
			stats.Prefilter.FalsePasses++
		}
		slot := &hvnlDocSlot{outer: d2.ID, perWorker: make([][]Match, nWorkers)}
		slots = append(slots, slot)
		for wk := 0; wk < nWorkers; wk++ {
			chans[wk] <- hvnlWork{slot: slot}
		}

		if mem := cache.Used() + btreeBytes + accBytes + outerDocBytes; mem > stats.PeakMemoryBytes {
			stats.PeakMemoryBytes = mem
		}
	}
	finish()
	probe.End()
	for w, c := range routed {
		tel.Counter(fmt.Sprintf("join.hvnl.worker.%d.routed_cells", w)).Add(c)
	}

	// Merge the per-worker candidates: disjoint blocks plus a total
	// tracker order make the merged top-λ equal the serial one.
	mergeSpan := startPhase(tel, trace, telemetry.PhaseMerge, "hvnlp.merge-trackers")
	results := make([]Result, 0, len(slots))
	for _, slot := range slots {
		merged := topk.New(opts.Lambda)
		for _, matches := range slot.perWorker {
			for _, m := range matches {
				merged.Offer(m.Doc, m.Sim)
			}
		}
		results = append(results, Result{Outer: slot.outer, Matches: merged.Results()})
	}
	mergeSpan.End()

	stats.Cache = cache.Stats()
	stats.IO = track.delta()
	stats.Cost = stats.IO.Cost(alpha(invFile))
	recordJoinStats(tel, stats)
	return results, stats, nil
}
