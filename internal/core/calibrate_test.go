package core

import (
	"strings"
	"testing"

	"textjoin/internal/costmodel"
	"textjoin/internal/telemetry"
)

// TestPlanSamples drives JoinIntegrated with telemetry attached and
// checks that replaying the snapshot recovers exactly the planner's
// estimated-vs-measured pair for the chosen algorithm.
func TestPlanSamples(t *testing.T) {
	e := buildEnv(t, 18, 30, 25, 60, 15, 256)
	tel := telemetry.New()
	opts := Options{Lambda: 5, MemoryPages: 100, Telemetry: tel}
	_, st, dec, err := JoinIntegrated(e.inputs(), opts)
	if err != nil {
		t.Fatal(err)
	}

	samples := PlanSamples(tel.Snapshot())
	if len(samples) != 1 {
		t.Fatalf("got %d samples, want 1: %+v", len(samples), samples)
	}
	s := samples[0]
	if s.Label != "plan-0" {
		t.Errorf("label = %q, want plan-0", s.Label)
	}
	if s.Algorithm.String() != dec.Chosen.String() {
		t.Errorf("sample algorithm %v, decision %v", s.Algorithm, dec.Chosen)
	}
	var wantEst float64
	for _, est := range dec.Estimates {
		if strings.EqualFold(est.Algorithm.String(), dec.Chosen.String()) {
			wantEst = float64(costUnits(est.Seq))
		}
	}
	if s.Estimated != wantEst {
		t.Errorf("estimated = %g, want %g", s.Estimated, wantEst)
	}
	if want := float64(costUnits(st.Cost)); s.Measured != want {
		t.Errorf("measured = %g, want %g", s.Measured, want)
	}

	// A second integrated run on the same collector adds a second sample.
	if _, _, _, err := JoinIntegrated(e.inputs(), opts); err != nil {
		t.Fatal(err)
	}
	samples = PlanSamples(tel.Snapshot())
	if len(samples) != 2 || samples[1].Label != "plan-1" {
		t.Fatalf("after second run: %+v", samples)
	}
}

func TestPlanSamplesEdgeCases(t *testing.T) {
	if got := PlanSamples(nil); got != nil {
		t.Errorf("nil snapshot: %+v", got)
	}

	// A measurement with no preceding estimate (ring overwrote it) and
	// events from other phases are both skipped.
	tel := telemetry.New()
	tel.Event(telemetry.PhaseScan, "estimate.hvnl.seq", 10) // wrong phase
	tel.Event(telemetry.PhasePlan, "measured.hvnl.cost", 20)
	tel.Event(telemetry.PhasePlan, "estimate.bogus.seq", 5) // unknown alg
	tel.Event(telemetry.PhasePlan, "measured.bogus.cost", 6)
	if got := PlanSamples(tel.Snapshot()); len(got) != 0 {
		t.Errorf("orphan/unknown events produced samples: %+v", got)
	}

	// The latest estimate wins when the planner re-estimates.
	tel = telemetry.New()
	tel.Event(telemetry.PhasePlan, "estimate.vvm.seq", 100)
	tel.Event(telemetry.PhasePlan, "estimate.vvm.seq", 40)
	tel.Event(telemetry.PhasePlan, "measured.vvm.cost", 44)
	got := PlanSamples(tel.Snapshot())
	if len(got) != 1 || got[0].Estimated != 40 || got[0].Algorithm != costmodel.AlgVVM {
		t.Fatalf("re-estimate: %+v", got)
	}
}
