package core

import (
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sync"
	"testing"

	"textjoin/internal/collection"
	"textjoin/internal/document"
	"textjoin/internal/iosim"
	"textjoin/internal/lsh"
	"textjoin/internal/telemetry"
)

// This file is the differential harness promised by the telemetry layer:
// every algorithm (serial and parallel, at several worker counts) must
// return the identical top-λ on a corpus of adversarial shapes, and
// attaching a telemetry collector must change neither the results nor
// one byte of the Stats.

// diffShape describes one seeded corpus shape. build returns the two
// document sets; the remaining fields parameterize the join. Each call
// to buildDiffEnv constructs a fresh disk, so head positions (and with
// them the sequential/random classification) start identically for every
// run being compared.
type diffShape struct {
	name     string
	pageSize int
	lambda   int
	mem      int64
	delta    float64
	build    func(r *rand.Rand) (c1, c2 []*document.Document)
}

// docOf builds one document from explicit term counts.
func docOf(id uint32, counts map[uint32]int) *document.Document {
	return document.New(id, counts)
}

func diffShapes() []diffShape {
	return []diffShape{
		{
			// Baseline: uniform random terms.
			name: "uniform", pageSize: 256, lambda: 4, mem: 300,
			build: func(r *rand.Rand) ([]*document.Document, []*document.Document) {
				return randomDocs(r, 40, 60, 12), randomDocs(r, 35, 60, 12)
			},
		},
		{
			// Heavily skewed document frequencies: a few terms appear
			// almost everywhere (stresses HVNL's cache policy and the
			// merge fan-out of the parallel VVM).
			name: "skewed-df", pageSize: 256, lambda: 4, mem: 300,
			build: func(r *rand.Rand) ([]*document.Document, []*document.Document) {
				z := rand.NewZipf(r, 1.3, 1, 49)
				gen := func(n int) []*document.Document {
					docs := make([]*document.Document, n)
					for i := range docs {
						counts := make(map[uint32]int)
						for j, l := 0, r.Intn(12)+1; j < l; j++ {
							counts[uint32(z.Uint64())]++
						}
						docs[i] = docOf(uint32(i), counts)
					}
					return docs
				}
				return gen(40), gen(40)
			},
		},
		{
			// Every third document is empty on both sides: rows must
			// still appear (with no matches) and nothing may divide by a
			// zero norm.
			name: "empty-docs", pageSize: 256, lambda: 3, mem: 300,
			build: func(r *rand.Rand) ([]*document.Document, []*document.Document) {
				gen := func(n int) []*document.Document {
					docs := make([]*document.Document, n)
					for i := range docs {
						if i%3 == 0 {
							docs[i] = docOf(uint32(i), nil)
							continue
						}
						counts := make(map[uint32]int)
						for j, l := 0, r.Intn(10)+1; j < l; j++ {
							counts[uint32(r.Intn(40))]++
						}
						docs[i] = docOf(uint32(i), counts)
					}
					return docs
				}
				return gen(30), gen(30)
			},
		},
		{
			// λ exceeds the inner collection: every outer document keeps
			// all non-zero inner matches.
			name: "lambda-gt-n1", pageSize: 256, lambda: 9, mem: 200,
			build: func(r *rand.Rand) ([]*document.Document, []*document.Document) {
				return randomDocs(r, 4, 25, 8), randomDocs(r, 12, 25, 8)
			},
		},
		{
			// Both collections fit one 4K page: the degenerate I/O case
			// (a single sequential read per scan).
			name: "one-page", pageSize: 4096, lambda: 3, mem: 100,
			build: func(r *rand.Rand) ([]*document.Document, []*document.Document) {
				return randomDocs(r, 8, 10, 3), randomDocs(r, 8, 10, 3)
			},
		},
		{
			// Disjoint vocabularies: every similarity is zero, so every
			// algorithm must emit empty match lists for every outer row.
			name: "disjoint-vocab", pageSize: 256, lambda: 3, mem: 200,
			build: func(r *rand.Rand) ([]*document.Document, []*document.Document) {
				gen := func(n, lo int) []*document.Document {
					docs := make([]*document.Document, n)
					for i := range docs {
						counts := make(map[uint32]int)
						for j, l := 0, r.Intn(8)+1; j < l; j++ {
							counts[uint32(lo+r.Intn(30))]++
						}
						docs[i] = docOf(uint32(i), counts)
					}
					return docs
				}
				return gen(20, 0), gen(20, 30)
			},
		},
		{
			// Every document identical: all similarities tie, so results
			// are decided purely by the deterministic tie-break order.
			name: "identical-docs", pageSize: 256, lambda: 5, mem: 200,
			build: func(r *rand.Rand) ([]*document.Document, []*document.Document) {
				gen := func(n int) []*document.Document {
					docs := make([]*document.Document, n)
					for i := range docs {
						docs[i] = docOf(uint32(i), map[uint32]int{1: 2, 5: 1, 9: 3})
					}
					return docs
				}
				return gen(20), gen(20)
			},
		},
		{
			// One term per document from a tiny vocabulary: maximal
			// entry sharing in the inverted files.
			name: "single-term-docs", pageSize: 256, lambda: 4, mem: 200,
			build: func(r *rand.Rand) ([]*document.Document, []*document.Document) {
				gen := func(n int) []*document.Document {
					docs := make([]*document.Document, n)
					for i := range docs {
						docs[i] = docOf(uint32(i), map[uint32]int{uint32(r.Intn(6)): r.Intn(3) + 1})
					}
					return docs
				}
				return gen(30), gen(30)
			},
		},
		{
			// Tight memory and δ=1 force VVM into multiple partitions
			// (and HHNL into multiple batches).
			name: "multi-pass", pageSize: 64, lambda: 3, mem: 30, delta: 1,
			build: func(r *rand.Rand) ([]*document.Document, []*document.Document) {
				return randomDocs(r, 50, 40, 10), randomDocs(r, 50, 40, 10)
			},
		},
	}
}

// buildDiffEnv constructs a fresh environment for a shape. Determinism:
// the same (shape, seed) always produces byte-identical collections on a
// disk with pristine head positions.
func buildDiffEnv(tb testing.TB, s diffShape, seed int64) *env {
	tb.Helper()
	r := rand.New(rand.NewSource(seed))
	docs1, docs2 := s.build(r)
	d := iosim.NewDisk(iosim.WithPageSize(s.pageSize))
	c1 := buildColl(tb, d, "c1", docs1)
	c2 := buildColl(tb, d, "c2", docs2)
	inv1 := buildInv(tb, d, c1, "c1")
	inv2 := buildInv(tb, d, c2, "c2")
	d.ResetStats()
	return &env{disk: d, c1: c1, c2: c2, inv1: inv1, inv2: inv2}
}

func (s diffShape) options() Options {
	return Options{Lambda: s.lambda, MemoryPages: s.mem, Delta: s.delta}
}

// diffVariant is one join entry point under test.
type diffVariant struct {
	name string
	run  func(in Inputs, opts Options) ([]Result, *Stats, error)
}

func diffVariants() []diffVariant {
	vs := []diffVariant{
		{"hhnl", JoinHHNL},
		{"hvnl", JoinHVNL},
		{"vvm", JoinVVM},
	}
	for _, w := range []int{1, 2, 7} {
		w := w
		vs = append(vs,
			diffVariant{fmt.Sprintf("hhnl-p%d", w), func(in Inputs, o Options) ([]Result, *Stats, error) {
				return JoinHHNLParallel(in, o, w)
			}},
			diffVariant{fmt.Sprintf("hvnl-p%d", w), func(in Inputs, o Options) ([]Result, *Stats, error) {
				return JoinHVNLParallel(in, o, w)
			}},
			diffVariant{fmt.Sprintf("vvm-p%d", w), func(in Inputs, o Options) ([]Result, *Stats, error) {
				return JoinVVMParallel(in, o, w)
			}},
		)
	}
	return vs
}

// TestDifferentialShapes is the cross-algorithm harness: on every shape,
// every variant must equal the serial HHNL baseline exactly.
func TestDifferentialShapes(t *testing.T) {
	for _, shape := range diffShapes() {
		shape := shape
		t.Run(shape.name, func(t *testing.T) {
			baseEnv := buildDiffEnv(t, shape, 1)
			want, _, err := JoinHHNL(baseEnv.inputs(), shape.options())
			if err != nil {
				t.Fatalf("baseline HHNL: %v", err)
			}
			for _, v := range diffVariants() {
				e := buildDiffEnv(t, shape, 1)
				got, _, err := v.run(e.inputs(), shape.options())
				if err != nil {
					t.Fatalf("%s: %v", v.name, err)
				}
				if err := sameResults(want, got); err != nil {
					t.Errorf("%s differs from baseline: %v", v.name, err)
				}
			}
		})
	}
}

// TestTelemetryInvariance pins the tentpole's contract: an attached
// collector changes neither the results nor a single byte of the Stats,
// for every variant on every shape. Fresh environments per run keep the
// disk head positions (and so the seq/rand classification) comparable.
func TestTelemetryInvariance(t *testing.T) {
	for _, shape := range diffShapes() {
		shape := shape
		t.Run(shape.name, func(t *testing.T) {
			for _, v := range diffVariants() {
				off := buildDiffEnv(t, shape, 1)
				offRes, offSt, err := v.run(off.inputs(), shape.options())
				if err != nil {
					t.Fatalf("%s off: %v", v.name, err)
				}

				on := buildDiffEnv(t, shape, 1)
				tel := telemetry.New()
				on.disk.SetCollector(tel)
				opts := shape.options()
				opts.Telemetry = tel
				onRes, onSt, err := v.run(on.inputs(), opts)
				if err != nil {
					t.Fatalf("%s on: %v", v.name, err)
				}

				if err := sameResults(offRes, onRes); err != nil {
					t.Errorf("%s: telemetry changed results: %v", v.name, err)
				}
				if *offSt != *onSt {
					t.Errorf("%s: telemetry changed stats:\noff %+v\non  %+v", v.name, *offSt, *onSt)
				}
				if s := tel.Snapshot(); len(s.Counters) == 0 || len(s.Trace) == 0 {
					t.Errorf("%s: enabled collector recorded nothing", v.name)
				}
			}
		})
	}
}

// TestTelemetryConcurrentSnapshots runs joins while another goroutine
// snapshots the shared collector continuously: collection must be safe
// under concurrency and still not perturb the results.
func TestTelemetryConcurrentSnapshots(t *testing.T) {
	shape := diffShapes()[0]
	baseEnv := buildDiffEnv(t, shape, 1)
	want, _, err := JoinHHNL(baseEnv.inputs(), shape.options())
	if err != nil {
		t.Fatal(err)
	}

	tel := telemetry.New()
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
				tel.Snapshot()
			}
		}
	}()

	for _, v := range diffVariants() {
		e := buildDiffEnv(t, shape, 1)
		e.disk.SetCollector(tel)
		opts := shape.options()
		opts.Telemetry = tel
		got, _, err := v.run(e.inputs(), opts)
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		if err := sameResults(want, got); err != nil {
			t.Errorf("%s under concurrent snapshots: %v", v.name, err)
		}
	}
	close(done)
	wg.Wait()

	snap := tel.Snapshot()
	if len(snap.Counters) == 0 {
		t.Error("no counters collected")
	}
}

// lshDiffConfig is the banding shape the LSH axis runs under: 32
// single-row bands keep the candidate S-curve 1−(1−s)^32 high even for
// the low-Jaccard pairs the small adversarial corpora produce, so the
// recall floors below are meaningful rather than vacuously tiny.
var lshDiffConfig = lsh.Config{Bands: 32, Rows: 1, Seed: 7}

// lshRecallFloors maps shape name → the measured-recall floor under
// lshDiffConfig. Everything is seeded and deterministic, so measured
// recall is an exact repeatable number per shape; the floors sit under
// the observed values with margin for intentional algorithm changes.
func lshRecallFloors() map[string]float64 {
	return map[string]float64{
		"uniform":          0.85,
		"skewed-df":        0.85,
		"empty-docs":       0.85,
		"lambda-gt-n1":     0.80,
		"one-page":         0.80,
		"disjoint-vocab":   1.00, // no exact pairs: recall is trivially 1
		"identical-docs":   1.00, // Jaccard 1 pairs always collide
		"single-term-docs": 1.00, // sharing the single term ⇒ same MinHash
		"multi-pass":       0.85,
	}
}

// buildDiffLSH builds the inner collection's MinHash sidecar on the
// shape's disk and re-zeroes the I/O stats, so runs being compared start
// from identical head positions whether or not they built a sidecar.
func buildDiffLSH(tb testing.TB, e *env, cfg lsh.Config) *lsh.Sidecar {
	tb.Helper()
	f, err := e.disk.Create("c1.lsh")
	if err != nil {
		tb.Fatal(err)
	}
	sc, err := lsh.Build(e.c1, f, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	e.disk.ResetStats()
	return sc
}

// collectDocs reads a whole collection into an id-indexed map.
func collectDocs(tb testing.TB, c *collection.Collection) map[uint32]*document.Document {
	tb.Helper()
	out := make(map[uint32]*document.Document)
	sc := c.Scan()
	for {
		d, err := sc.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			tb.Fatal(err)
		}
		out[d.ID] = d
	}
	return out
}

// exactSameResults is sameResults with byte-for-byte similarity
// equality — the LSH axis demands the verified scores be bit-identical
// to the exact scorer, not merely within tolerance.
func exactSameResults(a, b []Result) error {
	if len(a) != len(b) {
		return fmt.Errorf("result count %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Outer != b[i].Outer {
			return fmt.Errorf("row %d outer %d vs %d", i, a[i].Outer, b[i].Outer)
		}
		if len(a[i].Matches) != len(b[i].Matches) {
			return fmt.Errorf("outer %d match count %d vs %d", a[i].Outer, len(a[i].Matches), len(b[i].Matches))
		}
		for j := range a[i].Matches {
			ma, mb := a[i].Matches[j], b[i].Matches[j]
			if ma.Doc != mb.Doc || math.Float64bits(ma.Sim) != math.Float64bits(mb.Sim) {
				return fmt.Errorf("outer %d match %d: %+v vs %+v", a[i].Outer, j, ma, mb)
			}
		}
	}
	return nil
}

// TestDifferentialLSH is the approximate join's axis of the harness: on
// every shape, the LSH join must (1) return one row per outer document
// in outer order, (2) achieve measured recall ≥ the configured floor
// against the exact ground truth, (3) show perfect precision — every
// returned similarity byte-for-byte equal to the exact scorer on the
// underlying documents, and (4) produce results and Stats identical to
// the serial run from the parallel variant at workers 1, 2 and 7.
func TestDifferentialLSH(t *testing.T) {
	floors := lshRecallFloors()
	for _, shape := range diffShapes() {
		shape := shape
		t.Run(shape.name, func(t *testing.T) {
			baseEnv := buildDiffEnv(t, shape, 1)
			exact := reference(t, baseEnv.c2, baseEnv.c1, shape.lambda, rawScorer(t))

			e := buildDiffEnv(t, shape, 1)
			sc := buildDiffLSH(t, e, lshDiffConfig)
			opts := shape.options()
			opts.LSH = sc
			got, st, err := JoinLSH(e.inputs(), opts)
			if err != nil {
				t.Fatalf("JoinLSH: %v", err)
			}
			if st.Algorithm != LSH || !st.LSH.Enabled {
				t.Fatalf("stats not marked as LSH: %+v", st)
			}

			// (1) Row shape: same outer documents, same order, non-nil
			// match lists (empty rows must still appear).
			if len(got) != len(exact) {
				t.Fatalf("LSH returned %d rows, exact %d", len(got), len(exact))
			}
			for i := range got {
				if got[i].Outer != exact[i].Outer {
					t.Fatalf("row %d outer %d, exact has %d", i, got[i].Outer, exact[i].Outer)
				}
				if got[i].Matches == nil {
					t.Fatalf("outer %d: nil match list", got[i].Outer)
				}
			}

			// (3) Perfect precision: re-score every returned pair.
			innerDocs := collectDocs(t, e.c1)
			outerDocs := collectDocs(t, e.c2)
			scorer := rawScorer(t)
			for _, res := range got {
				for _, m := range res.Matches {
					if m.Sim <= 0 {
						t.Fatalf("outer %d returned non-positive similarity %v for doc %d", res.Outer, m.Sim, m.Doc)
					}
					want := scorer.Score(outerDocs[res.Outer], innerDocs[m.Doc])
					if math.Float64bits(m.Sim) != math.Float64bits(want) {
						t.Fatalf("outer %d doc %d: returned sim %v (bits %x), exact scorer %v (bits %x)",
							res.Outer, m.Doc, m.Sim, math.Float64bits(m.Sim), want, math.Float64bits(want))
					}
				}
			}

			// (2) Measured recall over the exact top-λ pair set.
			type pair struct{ o, i uint32 }
			exactPairs := make(map[pair]bool)
			for _, res := range exact {
				for _, m := range res.Matches {
					exactPairs[pair{res.Outer, m.Doc}] = true
				}
			}
			hits := 0
			for _, res := range got {
				for _, m := range res.Matches {
					if exactPairs[pair{res.Outer, m.Doc}] {
						hits++
					}
				}
			}
			recall := 1.0
			if len(exactPairs) > 0 {
				recall = float64(hits) / float64(len(exactPairs))
			}
			floor, ok := floors[shape.name]
			if !ok {
				t.Fatalf("no recall floor configured for shape %q", shape.name)
			}
			if recall < floor {
				t.Errorf("measured recall %.4f below floor %.2f (%d of %d exact pairs)",
					recall, floor, hits, len(exactPairs))
			}
			t.Logf("recall %.4f (floor %.2f), %d candidates, %d pages skipped",
				recall, floor, st.LSH.Candidates, st.LSH.PagesSkipped)

			// (4) Serial ≡ parallel: results and Stats byte-identical at
			// every worker count, each from a fresh disk.
			for _, w := range []int{1, 2, 7} {
				ep := buildDiffEnv(t, shape, 1)
				scp := buildDiffLSH(t, ep, lshDiffConfig)
				po := shape.options()
				po.LSH = scp
				pres, pst, err := JoinLSHParallel(ep.inputs(), po, w)
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				if err := exactSameResults(got, pres); err != nil {
					t.Errorf("workers=%d results differ from serial: %v", w, err)
				}
				if *st != *pst {
					t.Errorf("workers=%d stats differ:\nserial   %+v\nparallel %+v", w, *st, *pst)
				}
			}
		})
	}
}

// TestDifferentialReference anchors the harness itself: the serial HHNL
// baseline must match the brute-force reference on every shape, so shape
// bugs cannot hide behind all algorithms agreeing on a wrong answer.
func TestDifferentialReference(t *testing.T) {
	for _, shape := range diffShapes() {
		shape := shape
		t.Run(shape.name, func(t *testing.T) {
			e := buildDiffEnv(t, shape, 1)
			got, _, err := JoinHHNL(e.inputs(), shape.options())
			if err != nil {
				t.Fatal(err)
			}
			want := reference(t, e.c2, e.c1, shape.lambda, rawScorer(t))
			if err := sameResults(want, got); err != nil {
				t.Fatal(err)
			}
			if errors.Is(err, ErrInsufficientMemory) {
				t.Fatal("shape parameters must be feasible")
			}
		})
	}
}
