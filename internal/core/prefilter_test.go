package core

import (
	"fmt"
	"testing"

	"textjoin/internal/collection"
	"textjoin/internal/signature"
)

// This file extends the differential harness to the prefilter axis:
// every prefilter-aware entry point, serial and parallel, must return
// results byte-identical to the unfiltered serial HHNL baseline on
// every shape — including under deliberately tiny codes whose false
// positives stress the skip-never-admit invariant from both sides.

// pfTestConfigs are the signature codes the harness runs under: the
// defaults, a tiny saturating code (maximal false passes — pruning must
// degrade to a no-op, never to a wrong answer), and an odd-shaped code
// exercising rounding, bucketing and small clusters.
func pfTestConfigs() []signature.Config {
	return []signature.Config{
		{},
		{Bits: 64, Hashes: 1},
		{Bits: 100, Hashes: 3, Granularity: 7, ClusterDocs: 3},
	}
}

// buildTestPrefilter builds both sidecars on the env's disk and resets
// the I/O counters so the measured join starts clean, like buildDiffEnv.
func buildTestPrefilter(tb testing.TB, e *env, cfg signature.Config) *Prefilter {
	tb.Helper()
	build := func(coll *collection.Collection) *signature.Sidecar {
		tb.Helper()
		f, err := e.disk.Create(coll.Name() + ".sig")
		if err != nil {
			tb.Fatal(err)
		}
		sc, err := signature.Build(coll, f, cfg)
		if err != nil {
			tb.Fatal(err)
		}
		return sc
	}
	pf := &Prefilter{Inner: build(e.c1), Outer: build(e.c2)}
	e.disk.ResetStats()
	return pf
}

// pfVariants are the join entry points that honor Options.Prefilter,
// plus serial VVM, which must ignore it and still agree.
func pfVariants() []diffVariant {
	vs := []diffVariant{
		{"hhnl", JoinHHNL},
		{"hvnl", JoinHVNL},
		{"vvm", JoinVVM},
	}
	for _, w := range []int{2, 7} {
		w := w
		vs = append(vs,
			diffVariant{fmt.Sprintf("hhnl-p%d", w), func(in Inputs, o Options) ([]Result, *Stats, error) {
				return JoinHHNLParallel(in, o, w)
			}},
			diffVariant{fmt.Sprintf("hvnl-p%d", w), func(in Inputs, o Options) ([]Result, *Stats, error) {
				return JoinHVNLParallel(in, o, w)
			}},
		)
	}
	return vs
}

// TestDifferentialPrefilter runs the full prefilter axis: on every
// shape, every prefilter-aware variant under every code must equal the
// unfiltered serial HHNL baseline exactly.
func TestDifferentialPrefilter(t *testing.T) {
	for _, shape := range diffShapes() {
		shape := shape
		t.Run(shape.name, func(t *testing.T) {
			baseEnv := buildDiffEnv(t, shape, 1)
			want, _, err := JoinHHNL(baseEnv.inputs(), shape.options())
			if err != nil {
				t.Fatalf("baseline HHNL: %v", err)
			}
			for ci, cfg := range pfTestConfigs() {
				for _, v := range pfVariants() {
					e := buildDiffEnv(t, shape, 1)
					opts := shape.options()
					opts.Prefilter = buildTestPrefilter(t, e, cfg)
					got, st, err := v.run(e.inputs(), opts)
					if err != nil {
						t.Fatalf("cfg%d/%s: %v", ci, v.name, err)
					}
					if err := sameResults(want, got); err != nil {
						t.Errorf("cfg%d/%s differs from unfiltered baseline: %v", ci, v.name, err)
					}
					if v.name != "vvm" && !st.Prefilter.Enabled {
						t.Errorf("cfg%d/%s: prefilter stats not marked enabled", ci, v.name)
					}
				}
			}
		})
	}
}

// TestPrefilterSubsetOuter covers the selection path: with a Subset
// outer reader, the prefilter tests each selected id against the inner
// root and saves the skipped ids' random fetches, with results
// identical to the unfiltered run. The on-the-fly path (no outer
// sidecar) is exercised in the same sweep.
func TestPrefilterSubsetOuter(t *testing.T) {
	for _, shape := range diffShapes()[:3] {
		shape := shape
		t.Run(shape.name, func(t *testing.T) {
			baseEnv := buildDiffEnv(t, shape, 1)
			baseSub, err := baseEnv.c2.Subset([]uint32{1, 3, 7, 11, 13})
			if err != nil {
				t.Fatal(err)
			}
			baseIn := baseEnv.inputs()
			baseIn.Outer = baseSub
			want, _, err := JoinHVNL(baseIn, shape.options())
			if err != nil {
				t.Fatal(err)
			}
			for _, withOuter := range []bool{true, false} {
				e := buildDiffEnv(t, shape, 1)
				sub, err := e.c2.Subset([]uint32{1, 3, 7, 11, 13})
				if err != nil {
					t.Fatal(err)
				}
				in := e.inputs()
				in.Outer = sub
				opts := shape.options()
				opts.Prefilter = buildTestPrefilter(t, e, signature.Config{})
				if !withOuter {
					opts.Prefilter.Outer = nil
				}
				got, st, err := JoinHVNL(in, opts)
				if err != nil {
					t.Fatalf("outer=%v: %v", withOuter, err)
				}
				if err := sameResults(want, got); err != nil {
					t.Errorf("outer=%v differs from unfiltered subset join: %v", withOuter, err)
				}
				if !st.Prefilter.Enabled {
					t.Errorf("outer=%v: prefilter stats not marked enabled", withOuter)
				}
			}
		})
	}
}

// TestPrefilterStatsParity pins the coordinator-side design: the
// parallel variants make every prefilter decision on the coordinator
// and count every document exactly once, so their PrefilterStats must
// equal the serial run's byte for byte.
func TestPrefilterStatsParity(t *testing.T) {
	type serialParallel struct {
		name     string
		serial   func(in Inputs, o Options) ([]Result, *Stats, error)
		parallel func(in Inputs, o Options, w int) ([]Result, *Stats, error)
	}
	pairs := []serialParallel{
		{"hhnl", JoinHHNL, JoinHHNLParallel},
		{"hvnl", JoinHVNL, JoinHVNLParallel},
	}
	for _, shape := range diffShapes() {
		shape := shape
		t.Run(shape.name, func(t *testing.T) {
			for _, p := range pairs {
				e := buildDiffEnv(t, shape, 1)
				opts := shape.options()
				opts.Prefilter = buildTestPrefilter(t, e, signature.Config{})
				_, serialSt, err := p.serial(e.inputs(), opts)
				if err != nil {
					t.Fatalf("%s serial: %v", p.name, err)
				}
				for _, w := range []int{2, 7} {
					pe := buildDiffEnv(t, shape, 1)
					popts := shape.options()
					popts.Prefilter = buildTestPrefilter(t, pe, signature.Config{})
					_, parSt, err := p.parallel(pe.inputs(), popts, w)
					if err != nil {
						t.Fatalf("%s-p%d: %v", p.name, w, err)
					}
					if serialSt.Prefilter != parSt.Prefilter {
						t.Errorf("%s-p%d prefilter stats diverge:\nserial   %+v\nparallel %+v",
							p.name, w, serialSt.Prefilter, parSt.Prefilter)
					}
				}
			}
		})
	}
}
