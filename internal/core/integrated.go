package core

import (
	"fmt"
	"math"
	"strings"

	"textjoin/internal/collection"
	"textjoin/internal/costmodel"
	"textjoin/internal/reqtrace"
	"textjoin/internal/stats"
	"textjoin/internal/telemetry"
)

// ModelInput derives the cost-model description of a join from measured
// structures: C2's participating statistics come from the outer reader
// (subset statistics when a selection applies), while the inverted-file
// statistics stay at the base collections' values — the paper's point that
// inverted files do not shrink under selections.
func ModelInput(in Inputs) (costmodel.Input, error) {
	if in.Outer == nil || in.Inner == nil {
		return costmodel.Input{}, fmt.Errorf("%w: cost model needs both collections", ErrMissingInput)
	}
	c1 := in.Inner.Stats()
	mi := costmodel.Input{
		C1:      costmodel.Collection{N: c1.N, K: c1.K, T: c1.T},
		InvOnC1: costmodel.Collection{N: c1.N, K: c1.K, T: c1.T},
	}
	base := in.Outer.BaseStats()
	mi.InvOnC2 = costmodel.Collection{N: base.N, K: base.K, T: base.T}
	switch o := in.Outer.(type) {
	case *collection.Subset:
		st := o.Stats()
		mi.C2 = costmodel.Collection{N: st.N, K: st.K, T: st.T}
		mi.C2Random = true
	default:
		mi.C2 = mi.InvOnC2
	}
	// Measure q exactly from the memory-resident document-frequency
	// tables rather than using the simulation's three-band formula: the
	// planner has the real structures at hand.
	mi.Q = stats.OverlapQReader(in.Inner, in.Outer)
	return mi, nil
}

// ModelSystem derives the cost-model system parameters from the disk
// backing the inner collection and the memory budget in the options.
func ModelSystem(in Inputs, opts Options) costmodel.System {
	opts = opts.withDefaults()
	sys := costmodel.System{B: opts.MemoryPages, P: 4096, Alpha: 5}
	if in.Inner != nil {
		f := in.Inner.File()
		sys.P = int64(f.PageSize())
		sys.Alpha = f.Disk().Alpha()
	}
	return sys
}

// Decision records why the integrated algorithm picked what it picked.
type Decision struct {
	Chosen    Algorithm
	Estimates []costmodel.Estimate
	// Prefiltered marks that the winning plan uses the signature
	// prefilter (only possible when Options.Prefilter was supplied).
	Prefiltered bool
	// EstimatedRecall is the recall the chosen plan promises: exactly 1
	// for the exact algorithms, the banding S-curve estimate when the
	// approximate LSH join won (which requires Options.LSH and a
	// RecallSLO strictly between 0 and 1 that the estimate meets).
	EstimatedRecall float64
}

// Choose runs only the selection step of the integrated algorithm: it
// estimates all three costs from the inputs' measured statistics and
// returns the cheapest runnable algorithm.
func Choose(in Inputs, opts Options) (Decision, error) {
	opts = opts.withDefaults()
	mi, err := ModelInput(in)
	if err != nil {
		return Decision{}, err
	}
	sys := ModelSystem(in, opts)
	q := costmodel.Query{Lambda: int64(opts.Lambda), Delta: opts.Delta}
	_, ests := costmodel.Choose(mi, sys, q)
	dec := Decision{Estimates: ests}
	// Pick the cheapest algorithm whose structures are actually present:
	// HVNL needs the inner inverted file; VVM needs both inverted files
	// and a stored (not memory-resident) outer collection.
	available := func(a costmodel.Algorithm) bool {
		switch a {
		case costmodel.AlgHVNL:
			return in.InnerInv != nil
		case costmodel.AlgVVM:
			return in.InnerInv != nil && in.OuterInv != nil && in.Outer.Base() != nil
		default:
			return true
		}
	}
	best := costmodel.AlgHHNL
	bestCost := ests[0].Seq
	for _, e := range ests {
		if !available(e.Algorithm) {
			continue
		}
		if e.Seq < bestCost || (e.Algorithm == costmodel.AlgHHNL && e.Seq == bestCost) {
			best = e.Algorithm
			bestCost = e.Seq
		}
	}
	// With sidecars on offer, the prefiltered HHNL/HVNL variants compete
	// too: their estimates discount the measured skip fractions and
	// charge the sidecar load. A strict win is required — on a tie the
	// unfiltered plan (no sidecar dependency) stands.
	pf, err := activePrefilter(in, opts)
	if err != nil {
		return Decision{}, err
	}
	if pf != nil {
		pests := costmodel.EstimateAllPrefilter(mi, sys, q, measurePrefilter(pf))
		dec.Estimates = append(dec.Estimates, pests...)
		for _, e := range pests {
			if !available(e.Algorithm) {
				continue
			}
			if e.Seq < bestCost {
				best = e.Algorithm
				bestCost = e.Seq
				dec.Prefiltered = true
			}
		}
	}
	// With a MinHash sidecar on offer and a recall SLO strictly below 1,
	// the approximate join competes: it must promise at least the SLO's
	// recall AND strictly beat every exact plan's cost. SLO 0 (unset) and
	// SLO 1 both keep the planner exact — the SLO is an explicit opt-in
	// to approximation, and no banding shape promises recall 1.
	dec.EstimatedRecall = 1
	if opts.LSH != nil && opts.RecallSLO > 0 && opts.RecallSLO < 1 {
		if _, err := activeLSH(in, opts); err != nil {
			return Decision{}, err
		}
		lest := costmodel.EstimateLSH(mi, sys, q, measureLSH(opts.LSH))
		dec.Estimates = append(dec.Estimates, lest)
		if lest.Recall >= opts.RecallSLO && lest.Seq < bestCost {
			best = costmodel.AlgLSH
			dec.Prefiltered = false
			dec.EstimatedRecall = lest.Recall
		}
	}
	switch best {
	case costmodel.AlgHHNL:
		dec.Chosen = HHNL
	case costmodel.AlgHVNL:
		dec.Chosen = HVNL
	case costmodel.AlgVVM:
		dec.Chosen = VVM
	case costmodel.AlgLSH:
		dec.Chosen = LSH
	}
	return dec, nil
}

// costUnits rounds a model cost to whole page units for a telemetry
// event, clamping infeasible (+Inf) estimates to the largest value.
func costUnits(c float64) int64 {
	if math.IsInf(c, 1) || c >= math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(c + 0.5)
}

// recordPlan publishes the planner's estimates and choice as "plan" phase
// events, so a snapshot shows estimated vs measured cost side by side.
func recordPlan(tel *telemetry.Collector, dec Decision) {
	if tel == nil {
		return
	}
	for _, e := range dec.Estimates {
		name := strings.ToLower(e.Algorithm.String())
		if e.Prefiltered {
			// Four-part names are ignored by costmodel.PlanSamples, so
			// calibration keeps pairing only the unfiltered estimates.
			name += ".prefilter"
		}
		tel.Event(telemetry.PhasePlan, "estimate."+name+".seq", costUnits(e.Seq))
		tel.Event(telemetry.PhasePlan, "estimate."+name+".rand", costUnits(e.Rand))
	}
	tel.Counter("plan.chosen." + strings.ToLower(dec.Chosen.String())).Add(1)
	if dec.Prefiltered {
		tel.Counter("plan.prefilter.on").Add(1)
	}
	if dec.Chosen == LSH {
		// Milli-recall as an event value (events carry int64); the name
		// has no "estimate."/"measured." prefix, so calibration replay
		// ignores it.
		tel.Event(telemetry.PhasePlan, "plan.lsh.recall_milli", int64(dec.EstimatedRecall*1000+0.5))
	}
}

// chosenEstimate returns the estimated cost of the plan the decision
// picked (matching algorithm and prefilter flag), or NaN when the
// estimate list lacks it.
func chosenEstimate(dec Decision) float64 {
	var want costmodel.Algorithm
	switch dec.Chosen {
	case HHNL:
		want = costmodel.AlgHHNL
	case HVNL:
		want = costmodel.AlgHVNL
	case VVM:
		want = costmodel.AlgVVM
	case LSH:
		want = costmodel.AlgLSH
	}
	for _, e := range dec.Estimates {
		if e.Algorithm == want && e.Prefiltered == dec.Prefiltered {
			return e.Seq
		}
	}
	return math.NaN()
}

// PlanErrorBuckets are the bounds of the "plan.error.log2" histogram:
// signed milli-log2 of measured/estimated cost, so one bucket is a
// fixed multiplicative error band (±1000 ≙ a factor of 2, ±250 ≙
// ~19%). Symmetric around zero because the model can miss both ways.
var PlanErrorBuckets = []int64{-4000, -2000, -1000, -500, -250, -100, 0, 100, 250, 500, 1000, 2000, 4000}

// recordPlanAudit publishes the per-request estimated-vs-measured
// comparison once the chosen plan has run: the live counterpart of the
// offline calibration report. The signed milli-log2 cost error goes to
// the "plan.error.log2" telemetry histogram, and the request span gets
// the measured cost and error as attributes next to the plan span's
// estimates.
func recordPlanAudit(tel *telemetry.Collector, trace *reqtrace.Span, dec Decision, measured float64) {
	trace.SetFloat("plan.measured_cost", measured)
	est := chosenEstimate(dec)
	if math.IsNaN(est) || math.IsInf(est, 0) || est <= 0 || measured <= 0 {
		return
	}
	milliLog2 := int64(math.Round(math.Log2(measured/est) * 1000))
	trace.SetFloat("plan.estimated_cost", est)
	trace.SetInt("plan.error_log2_milli", milliLog2)
	if tel != nil {
		tel.Histogram("plan.error.log2", PlanErrorBuckets).Observe(milliLog2)
	}
}

// JoinIntegrated implements the paper's integrated algorithm: estimate the
// cost of each basic algorithm from the collection statistics, system
// parameters and query parameters, then run the one with the lowest
// estimated cost.
func JoinIntegrated(in Inputs, opts Options) ([]Result, *Stats, Decision, error) {
	tel, trace := opts.Telemetry, opts.Trace
	span := startPhase(tel, trace, telemetry.PhasePlan, "integrated.choose")
	dec, err := Choose(in, opts)
	if err != nil {
		span.End()
		return nil, nil, dec, err
	}
	span.req.SetAttr("plan.chosen", dec.Chosen.String())
	if est := chosenEstimate(dec); !math.IsNaN(est) {
		span.req.SetFloat("plan.estimated_cost", est)
	}
	span.req.SetFloat("plan.estimated_recall", dec.EstimatedRecall)
	if dec.Prefiltered {
		span.req.SetAttr("plan.prefiltered", "true")
	}
	span.End()
	recordPlan(tel, dec)
	if !dec.Prefiltered {
		// The unfiltered plan won on estimated cost; run it without the
		// filter so the measured cost matches the estimate.
		opts.Prefilter = nil
	}
	results, stats, err := Join(dec.Chosen, in, opts)
	if err == nil {
		if tel != nil {
			// Measured counterpart of the estimates above: the chosen
			// algorithm's actual α-priced cost, in the same page units.
			tel.Event(telemetry.PhasePlan, "measured."+strings.ToLower(dec.Chosen.String())+".cost", costUnits(stats.Cost))
		}
		recordPlanAudit(tel, trace, dec, stats.Cost)
	}
	return results, stats, dec, err
}
