package core

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"

	"textjoin/internal/accum"
	"textjoin/internal/codec"
	"textjoin/internal/document"
	"textjoin/internal/invfile"
	"textjoin/internal/signature"
	"textjoin/internal/telemetry"
	"textjoin/internal/topk"
)

// The paper's concluding remarks list "(3) develop algorithms that
// process textual joins in parallel" as further study. This file
// implements shared-memory parallel variants of HHNL and VVM.
//
// The parallelization deliberately leaves all storage access on a single
// goroutine: the paper's cost model is about page I/O, and interleaving
// concurrent readers would corrupt the sequential/random classification
// (and model a different device). What parallelizes is the CPU side —
// similarity computation and accumulation — which the paper excludes from
// its cost model but which dominates wall-clock time in memory-resident
// runs. Results are identical to the serial algorithms: each worker
// produces candidates for disjoint document pairs, and the top-λ merge of
// disjoint candidate sets equals the global top-λ.

// resolveWorkers maps an Options worker count to an effective one.
func resolveWorkers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// JoinHHNLParallel is HHNL (forward order) with the similarity
// computation fanned out over workers. The outer batch is loaded and the
// inner collection scanned exactly as in the serial algorithm (same I/O,
// same batches); chunks of scanned inner documents are handed to a worker
// pool, each worker scoring them against the whole resident batch into
// its own trackers, merged per batch. Chunk slices are recycled through a
// sync.Pool so the steady state allocates nothing per chunk.
func JoinHHNLParallel(in Inputs, opts Options, workers int) ([]Result, *Stats, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, nil, err
	}
	if opts.Backward {
		return nil, nil, fmt.Errorf("core: parallel HHNL supports forward order only")
	}
	if in.Outer == nil || in.Inner == nil {
		return nil, nil, fmt.Errorf("%w: HHNL needs both document collections", ErrMissingInput)
	}
	scorer, err := in.scorer(opts)
	if err != nil {
		return nil, nil, err
	}
	nWorkers := resolveWorkers(workers)
	stats := &Stats{Algorithm: HHNL, InnerDocs: in.Inner.NumDocs()}
	budget, slotBytes, err := hhnlBatchBytes(in, opts)
	if err != nil {
		return nil, nil, err
	}
	pf, err := activePrefilter(in, opts)
	if err != nil {
		return nil, nil, err
	}
	var (
		sigCfg signature.Config
		q      signature.Sig
		need   []bool
	)
	if pf != nil {
		stats.Prefilter.Enabled = true
		sigCfg = pf.Inner.Config()
	}
	track := trackIO(in.Outer.File(), in.Inner.File())
	tel, trace := opts.Telemetry, opts.Trace

	const chunkSize = 64
	chunkPool := sync.Pool{New: func() any {
		s := make([]*document.Document, 0, chunkSize)
		return &s
	}}

	var results []Result
	outer := in.Outer.Documents()
	var pending *document.Document
	done := false
	for !done {
		fill := startPhase(tel, trace, telemetry.PhaseScan, "hhnlp.fill-batch")
		var batch []*document.Document
		var used int64
		for {
			var d *document.Document
			if pending != nil {
				d, pending = pending, nil
			} else {
				var err error
				d, err = outer.Next()
				if err == io.EOF {
					done = true
					break
				}
				if err != nil {
					fill.End()
					return nil, nil, err
				}
			}
			cost := d.EncodedSize() + slotBytes
			if used+cost > budget && len(batch) > 0 {
				pending = d
				break
			}
			if used+cost > budget {
				fill.End()
				return nil, nil, fmt.Errorf("%w: outer document %d (%d bytes) exceeds the batch budget %d",
					ErrInsufficientMemory, d.ID, cost, budget)
			}
			batch = append(batch, d)
			used += cost
		}
		fill.End()
		if len(batch) == 0 {
			break
		}
		stats.Passes++
		stats.OuterDocs += int64(len(batch))
		if used > stats.PeakMemoryBytes {
			stats.PeakMemoryBytes = used
		}

		// Per-worker tracker sets: workers see disjoint inner chunks, so
		// merging their kept matches reproduces the global top-λ.
		workerTrackers := make([][]*topk.TopK, nWorkers)
		for w := range workerTrackers {
			ts := make([]*topk.TopK, len(batch))
			for i := range ts {
				ts[i] = topk.New(opts.Lambda)
			}
			workerTrackers[w] = ts
		}
		compCounts := make([]int64, nWorkers)
		fpCounts := make([]int64, nWorkers)

		chunks := make(chan *[]*document.Document, nWorkers)
		var wg sync.WaitGroup
		for w := 0; w < nWorkers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				ts := workerTrackers[w]
				for chunk := range chunks {
					for _, d1 := range *chunk {
						anyHit := false
						for i, d2 := range batch {
							sim := scorer.Score(d2, d1)
							if sim != 0 {
								anyHit = true
							}
							ts[i].Offer(d1.ID, sim)
						}
						if !anyHit {
							fpCounts[w]++
						}
					}
					compCounts[w] += int64(len(*chunk)) * int64(len(batch))
					*chunk = (*chunk)[:0]
					chunkPool.Put(chunk)
				}
			}(w)
		}

		// Prefilter decisions happen on the coordinator, exactly as in
		// the serial algorithm — same keep vector, same skipped pages.
		var nextInner func() (*document.Document, error)
		if pf != nil {
			filter := startPhase(tel, trace, telemetry.PhaseScan, "hhnlp.prefilter")
			var pfErr error
			q = batchSig(sigCfg, batch, q)
			need, pfErr = sidecarNeed(pf.Inner, in.Inner, q, need, &stats.Prefilter)
			filter.End()
			if pfErr != nil {
				close(chunks)
				wg.Wait()
				return nil, nil, pfErr
			}
			nextInner = in.Inner.ScanFiltered(func(id uint32) bool { return need[id] }).Next
		} else {
			nextInner = in.Inner.Scan().Next
		}

		// Single-threaded sequential scan of the inner collection.
		score := startPhase(tel, trace, telemetry.PhaseScore, "hhnlp.inner-scan")
		var scanErr error
		chunk := chunkPool.Get().(*[]*document.Document)
		for {
			d1, err := nextInner()
			if err == io.EOF {
				break
			}
			if err != nil {
				scanErr = err
				break
			}
			*chunk = append(*chunk, d1)
			if len(*chunk) == chunkSize {
				chunks <- chunk
				chunk = chunkPool.Get().(*[]*document.Document)
			}
		}
		if len(*chunk) > 0 && scanErr == nil {
			chunks <- chunk
		}
		close(chunks)
		wg.Wait()
		score.End()
		if scanErr != nil {
			return nil, nil, scanErr
		}

		merge := startPhase(tel, trace, telemetry.PhaseMerge, "hhnlp.merge-trackers")
		for i, d2 := range batch {
			merged := topk.New(opts.Lambda)
			for w := 0; w < nWorkers; w++ {
				for _, m := range workerTrackers[w][i].Results() {
					merged.Offer(m.Doc, m.Sim)
				}
			}
			results = append(results, Result{Outer: d2.ID, Matches: merged.Results()})
		}
		merge.End()
		for w, c := range compCounts {
			stats.Comparisons += c
			if tel != nil {
				tel.Counter(fmt.Sprintf("join.hhnl.worker.%d.comparisons", w)).Add(c)
			}
		}
		if pf != nil {
			// Each scanned inner document is counted by exactly one
			// worker, so the sum matches the serial count.
			for _, c := range fpCounts {
				stats.Prefilter.FalsePasses += c
			}
		}
	}
	stats.IO = track.delta()
	stats.Cost = stats.IO.Cost(alpha(in.Inner.File()))
	recordJoinStats(tel, stats)
	return results, stats, nil
}

// vvmTermWork is one worker's share of a common-term entry pair: the
// worker-owned contiguous sub-slice of the outer entry's i-cells, plus the
// shared (read-only) inner entry.
type vvmTermWork struct {
	factor float64
	e1     *invfile.Entry
	cells  []codec.Cell
}

// JoinVVMParallel is VVM with the per-term accumulation fanned out by
// outer-document ownership. Worker w owns a contiguous block of the
// pass's outer-id ranks, so the merge-scan goroutine (still one
// sequential sweep of each inverted file per pass, exactly as serial VVM)
// splits each outer entry's cell list by owner with binary searches and
// routes each worker only its own sub-slice — no worker ever scans cells
// it does not own. Each worker accumulates into its own accum shard
// (dense rows or an open-addressing table, mirroring the serial regime
// choice) and emits the results for its rank block directly, so the
// finalize/top-λ phase parallelizes too. Partitioning (⌈SM/M⌉ passes) is
// unchanged.
func JoinVVMParallel(in Inputs, opts Options, workers int) ([]Result, *Stats, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, nil, err
	}
	if in.InnerInv == nil || in.OuterInv == nil || in.Outer == nil || in.Inner == nil {
		return nil, nil, fmt.Errorf("%w: VVM needs both inverted files and both collections' statistics", ErrMissingInput)
	}
	// Run the serial partitioning logic by reusing JoinVVM for the
	// degenerate single-worker case.
	nWorkers := resolveWorkers(workers)
	if nWorkers == 1 {
		return JoinVVM(in, opts)
	}
	scorer, err := in.scorer(opts)
	if err != nil {
		return nil, nil, err
	}

	plan, err := vvmPlan(in, opts)
	if err != nil {
		return nil, nil, err
	}
	stats := plan.stats
	n1 := int(in.Inner.NumDocs())
	tel, trace := opts.Telemetry, opts.Trace

	var results []Result
	for p := 0; p < plan.passes; p++ {
		rangeIDs := plan.rangeIDs(p)
		if len(rangeIDs) == 0 {
			continue
		}
		stats.Passes++
		set := accum.NewIDSet(rangeIDs)
		dense := accum.UseDense(len(rangeIDs), n1, plan.passBytes)
		if tel != nil {
			kind := "table"
			if dense {
				kind = "dense"
			}
			tel.Counter("join.vvm.accum." + kind).Add(1)
		}

		// Ownership: worker w owns the contiguous rank block
		// [blocks[w], blocks[w+1]) of the (ascending) rangeIDs.
		blocks := make([]int, nWorkers+1)
		for w := range blocks {
			blocks[w] = w * len(rangeIDs) / nWorkers
		}

		accs := make([]accum.Accumulator, nWorkers)
		chans := make([]chan vvmTermWork, nWorkers)
		accCounts := make([]int64, nWorkers)
		passResults := make([]Result, len(rangeIDs))
		var wg sync.WaitGroup
		for w := 0; w < nWorkers; w++ {
			rankLo, rankHi := blocks[w], blocks[w+1]
			if dense {
				accs[w] = accum.NewDense(rankHi-rankLo, n1)
			} else {
				accs[w] = accum.NewTable(0)
			}
			chans[w] = make(chan vvmTermWork, 128)
			wg.Add(1)
			go func(w, rankLo, rankHi int) {
				defer wg.Done()
				acc := accs[w]
				var count int64
				for tw := range chans[w] {
					for _, c2 := range tw.cells {
						rank, ok := set.Rank(c2.Number)
						if !ok {
							continue
						}
						v := float64(c2.Weight) * tw.factor
						row := rank - rankLo
						for _, c1 := range tw.e1.Cells {
							acc.Add(row, c1.Number, float64(c1.Weight)*v)
						}
						count += int64(len(tw.e1.Cells))
					}
				}
				accCounts[w] = count

				// Finalize this worker's own rank block. Blocks are
				// disjoint slices of passResults, so no locking.
				trackers := make([]*topk.TopK, rankHi-rankLo)
				acc.ForEach(func(row int, inner uint32, raw float64) {
					tk := trackers[row]
					if tk == nil {
						tk = topk.New(opts.Lambda)
						trackers[row] = tk
					}
					tk.Offer(inner, scorer.Finalize(rangeIDs[rankLo+row], inner, raw))
				})
				for row := range trackers {
					var matches []Match
					if tk := trackers[row]; tk != nil {
						matches = tk.Results()
					}
					passResults[rankLo+row] = Result{Outer: rangeIDs[rankLo+row], Matches: matches}
				}
			}(w, rankLo, rankHi)
		}

		// Route each common-term pair: both the entry's cells and the rank
		// blocks ascend by document number, so one forward sweep with a
		// binary search per block boundary splits the cell list.
		merge := startPhase(tel, trace, telemetry.PhaseMerge, "vvmp.merge-scan")
		scanErr := mergeScan(in.InnerInv, in.OuterInv, false, func(term uint32, e1, e2 *invfile.Entry) {
			factor := scorer.TermFactor(term)
			if factor == 0 {
				return
			}
			cells := e2.Cells
			i := 0
			for w := 0; w < nWorkers && i < len(cells); w++ {
				rankLo, rankHi := blocks[w], blocks[w+1]
				if rankLo == rankHi {
					continue
				}
				loID, hiID := rangeIDs[rankLo], rangeIDs[rankHi-1]
				start := i + sort.Search(len(cells)-i, func(k int) bool { return cells[i+k].Number >= loID })
				end := start + sort.Search(len(cells)-start, func(k int) bool { return cells[start+k].Number > hiID })
				i = end
				if start < end {
					chans[w] <- vvmTermWork{factor: factor, e1: e1, cells: cells[start:end]}
				}
			}
		})
		for w := 0; w < nWorkers; w++ {
			close(chans[w])
		}
		wg.Wait()
		merge.End()
		if scanErr != nil {
			return nil, nil, scanErr
		}
		var memBytes int64
		for w, c := range accCounts {
			stats.Accumulations += c
			memBytes += accs[w].Bytes()
			if tel != nil {
				tel.Counter(fmt.Sprintf("join.vvm.worker.%d.accumulations", w)).Add(c)
			}
		}
		if memBytes > stats.PeakMemoryBytes {
			stats.PeakMemoryBytes = memBytes
		}
		results = append(results, passResults...)
	}
	stats.IO = plan.track.delta()
	stats.Cost = stats.IO.Cost(alpha(in.InnerInv.File()))
	recordJoinStats(tel, stats)
	return results, stats, nil
}
