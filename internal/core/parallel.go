package core

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"textjoin/internal/document"
	"textjoin/internal/invfile"
	"textjoin/internal/topk"
)

// The paper's concluding remarks list "(3) develop algorithms that
// process textual joins in parallel" as further study. This file
// implements shared-memory parallel variants of HHNL and VVM.
//
// The parallelization deliberately leaves all storage access on a single
// goroutine: the paper's cost model is about page I/O, and interleaving
// concurrent readers would corrupt the sequential/random classification
// (and model a different device). What parallelizes is the CPU side —
// similarity computation and accumulation — which the paper excludes from
// its cost model but which dominates wall-clock time in memory-resident
// runs. Results are identical to the serial algorithms: each worker
// produces candidates for disjoint document pairs, and the top-λ merge of
// disjoint candidate sets equals the global top-λ.

// resolveWorkers maps an Options worker count to an effective one.
func resolveWorkers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// JoinHHNLParallel is HHNL (forward order) with the similarity
// computation fanned out over workers. The outer batch is loaded and the
// inner collection scanned exactly as in the serial algorithm (same I/O,
// same batches); chunks of scanned inner documents are handed to a worker
// pool, each worker scoring them against the whole resident batch into
// its own trackers, merged per batch.
func JoinHHNLParallel(in Inputs, opts Options, workers int) ([]Result, *Stats, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, nil, err
	}
	if opts.Backward {
		return nil, nil, fmt.Errorf("core: parallel HHNL supports forward order only")
	}
	if in.Outer == nil || in.Inner == nil {
		return nil, nil, fmt.Errorf("%w: HHNL needs both document collections", ErrMissingInput)
	}
	scorer, err := in.scorer(opts)
	if err != nil {
		return nil, nil, err
	}
	nWorkers := resolveWorkers(workers)
	stats := &Stats{Algorithm: HHNL, InnerDocs: in.Inner.NumDocs()}
	budget, slotBytes, err := hhnlBatchBytes(in, opts)
	if err != nil {
		return nil, nil, err
	}
	track := trackIO(in.Outer.File(), in.Inner.File())

	const chunkSize = 64

	var results []Result
	outer := in.Outer.Documents()
	var pending *document.Document
	done := false
	for !done {
		var batch []*document.Document
		var used int64
		for {
			var d *document.Document
			if pending != nil {
				d, pending = pending, nil
			} else {
				var err error
				d, err = outer.Next()
				if err == io.EOF {
					done = true
					break
				}
				if err != nil {
					return nil, nil, err
				}
			}
			cost := d.EncodedSize() + slotBytes
			if used+cost > budget && len(batch) > 0 {
				pending = d
				break
			}
			if used+cost > budget {
				return nil, nil, fmt.Errorf("%w: outer document %d (%d bytes) exceeds the batch budget %d",
					ErrInsufficientMemory, d.ID, cost, budget)
			}
			batch = append(batch, d)
			used += cost
		}
		if len(batch) == 0 {
			break
		}
		stats.Passes++
		stats.OuterDocs += int64(len(batch))
		if used > stats.PeakMemoryBytes {
			stats.PeakMemoryBytes = used
		}

		// Per-worker tracker sets: workers see disjoint inner chunks, so
		// merging their kept matches reproduces the global top-λ.
		workerTrackers := make([][]*topk.TopK, nWorkers)
		for w := range workerTrackers {
			ts := make([]*topk.TopK, len(batch))
			for i := range ts {
				ts[i] = topk.New(opts.Lambda)
			}
			workerTrackers[w] = ts
		}
		compCounts := make([]int64, nWorkers)

		chunks := make(chan []*document.Document, nWorkers)
		var wg sync.WaitGroup
		for w := 0; w < nWorkers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				ts := workerTrackers[w]
				for chunk := range chunks {
					for _, d1 := range chunk {
						for i, d2 := range batch {
							ts[i].Offer(d1.ID, scorer.Score(d2, d1))
							compCounts[w]++
						}
					}
				}
			}(w)
		}

		// Single-threaded sequential scan of the inner collection.
		var scanErr error
		inner := in.Inner.Scan()
		chunk := make([]*document.Document, 0, chunkSize)
		for {
			d1, err := inner.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				scanErr = err
				break
			}
			chunk = append(chunk, d1)
			if len(chunk) == chunkSize {
				chunks <- chunk
				chunk = make([]*document.Document, 0, chunkSize)
			}
		}
		if len(chunk) > 0 && scanErr == nil {
			chunks <- chunk
		}
		close(chunks)
		wg.Wait()
		if scanErr != nil {
			return nil, nil, scanErr
		}

		for i, d2 := range batch {
			merged := topk.New(opts.Lambda)
			for w := 0; w < nWorkers; w++ {
				for _, m := range workerTrackers[w][i].Results() {
					merged.Offer(m.Doc, m.Sim)
				}
			}
			results = append(results, Result{Outer: d2.ID, Matches: merged.Results()})
		}
		for _, c := range compCounts {
			stats.Comparisons += c
		}
	}
	stats.IO = track.delta()
	stats.Cost = stats.IO.Cost(alpha(in.Inner.File()))
	return results, stats, nil
}

// JoinVVMParallel is VVM with the per-term accumulation fanned out:
// worker w owns the outer documents with id ≡ w (mod workers), the merge
// scan stays single-threaded (one sequential sweep of each inverted file
// per pass, exactly as serial VVM), and each common-term entry pair is
// broadcast to all workers, which accumulate only their own outer
// documents. Partitioning (⌈SM/M⌉ passes) is unchanged.
func JoinVVMParallel(in Inputs, opts Options, workers int) ([]Result, *Stats, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, nil, err
	}
	if in.InnerInv == nil || in.OuterInv == nil || in.Outer == nil || in.Inner == nil {
		return nil, nil, fmt.Errorf("%w: VVM needs both inverted files and both collections' statistics", ErrMissingInput)
	}
	// Run the serial partitioning logic by reusing JoinVVM for the
	// degenerate single-worker case.
	nWorkers := resolveWorkers(workers)
	if nWorkers == 1 {
		return JoinVVM(in, opts)
	}
	scorer, err := in.scorer(opts)
	if err != nil {
		return nil, nil, err
	}

	outerIDs, passes, stats, track, err := vvmPlan(in, opts)
	if err != nil {
		return nil, nil, err
	}

	type termWork struct {
		factor float64
		e1, e2 *invfile.Entry
	}

	var results []Result
	for p := 0; p < passes; p++ {
		lo := p * len(outerIDs) / passes
		hi := (p + 1) * len(outerIDs) / passes
		rangeIDs := outerIDs[lo:hi]
		if len(rangeIDs) == 0 {
			continue
		}
		stats.Passes++

		inRange := make(map[uint32]int, len(rangeIDs)) // outer id -> owning worker
		for i, id := range rangeIDs {
			inRange[id] = i % nWorkers
		}

		accs := make([]map[uint64]float64, nWorkers)
		chans := make([]chan termWork, nWorkers)
		var wg sync.WaitGroup
		accCounts := make([]int64, nWorkers)
		for w := 0; w < nWorkers; w++ {
			accs[w] = make(map[uint64]float64)
			chans[w] = make(chan termWork, 128)
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				acc := accs[w]
				for tw := range chans[w] {
					for _, c2 := range tw.e2.Cells {
						owner, ok := inRange[c2.Number]
						if !ok || owner != w {
							continue
						}
						v := float64(c2.Weight) * tw.factor
						base := uint64(c2.Number) << 32
						for _, c1 := range tw.e1.Cells {
							acc[base|uint64(c1.Number)] += float64(c1.Weight) * v
							accCounts[w]++
						}
					}
				}
			}(w)
		}

		scanErr := mergeScan(in.InnerInv, in.OuterInv, func(term uint32, e1, e2 *invfile.Entry) {
			factor := scorer.TermFactor(term)
			if factor == 0 {
				return
			}
			tw := termWork{factor: factor, e1: e1, e2: e2}
			for w := 0; w < nWorkers; w++ {
				chans[w] <- tw
			}
		})
		for w := 0; w < nWorkers; w++ {
			close(chans[w])
		}
		wg.Wait()
		if scanErr != nil {
			return nil, nil, scanErr
		}
		for _, c := range accCounts {
			stats.Accumulations += c
		}

		perOuter := make(map[uint32]*topk.TopK, len(rangeIDs))
		var memBytes int64
		for _, acc := range accs {
			memBytes += int64(len(acc)) * 12
			for key, raw := range acc {
				outerDoc := uint32(key >> 32)
				innerDoc := uint32(key & 0xffffffff)
				tk := perOuter[outerDoc]
				if tk == nil {
					tk = topk.New(opts.Lambda)
					perOuter[outerDoc] = tk
				}
				tk.Offer(innerDoc, scorer.Finalize(outerDoc, innerDoc, raw))
			}
		}
		if memBytes > stats.PeakMemoryBytes {
			stats.PeakMemoryBytes = memBytes
		}
		for _, id := range sortedCopy(rangeIDs) {
			var matches []Match
			if tk := perOuter[id]; tk != nil {
				matches = tk.Results()
			}
			results = append(results, Result{Outer: id, Matches: matches})
		}
	}
	stats.IO = track.delta()
	stats.Cost = stats.IO.Cost(alpha(in.InnerInv.File()))
	return results, stats, nil
}
