// Package signature implements fixed-width superimposed-code term
// signatures for the exact joins' pre-filter: per-document bit vectors
// where every term sets k hashed bits, persisted as a sidecar file on
// the iosim disk alongside per-page and per-cluster aggregates (the OR
// of the member documents' signatures).
//
// The single invariant the joins rely on: a zero AND between two
// signatures proves the underlying term sets are disjoint, so the pair's
// similarity is exactly zero and the pair (or the whole page / cluster
// behind an aggregate) can be skipped without decoding anything.
// Signatures may only skip, never admit — a nonzero AND says nothing and
// the pair proceeds to the normal exact path, which is why prefiltered
// joins return byte-identical results.
//
// Terms are quantized into buckets of Granularity consecutive term
// numbers before hashing. The collection dictionary assigns ascending
// numbers to a sorted vocabulary, and the clustered build path
// (cluster.Clustered) co-locates documents that share terms, so topical
// documents occupy narrow term ranges; coarse buckets let a small
// signature keep aggregate (page/cluster) tests selective instead of
// saturating. Granularity 1 is the classic per-term code.
package signature

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"textjoin/internal/collection"
	"textjoin/internal/document"
	"textjoin/internal/iosim"
)

// Defaults for Config's zero values.
const (
	DefaultBits        = 1024
	DefaultHashes      = 2
	DefaultGranularity = 1
	DefaultClusterDocs = 16
)

// Sidecar file layout constants.
const (
	magic   = 0x544a5347 // "TJSG"
	version = 1
	// headerSize is the fixed serialized header: magic, version, bits,
	// hashes, granularity, clusterDocs (uint32 each) then numDocs,
	// numPages, numClusters (int64 each).
	headerSize = 6*4 + 3*8
)

// Config sets the code's shape. The zero value selects the defaults
// above.
type Config struct {
	// Bits is the signature width in bits; rounded up to a multiple of
	// 64.
	Bits int
	// Hashes is k, the number of bits each (bucketed) term sets.
	Hashes int
	// Granularity is the number of consecutive term numbers that share
	// one hash bucket.
	Granularity int
	// ClusterDocs is the number of consecutive document ids aggregated
	// into one cluster signature.
	ClusterDocs int
}

func (c Config) withDefaults() Config {
	if c.Bits <= 0 {
		c.Bits = DefaultBits
	}
	c.Bits = (c.Bits + 63) &^ 63
	if c.Hashes <= 0 {
		c.Hashes = DefaultHashes
	}
	if c.Granularity <= 0 {
		c.Granularity = DefaultGranularity
	}
	if c.ClusterDocs <= 0 {
		c.ClusterDocs = DefaultClusterDocs
	}
	return c
}

// Words is the signature width in 64-bit words.
func (c Config) Words() int { return c.withDefaults().Bits / 64 }

// Sig is one signature: Words() 64-bit words.
type Sig []uint64

// New returns an all-zero signature of the configured width.
func (c Config) New() Sig { return make(Sig, c.Words()) }

// Add sets term's k hashed bits in s. s must have the configured width.
func (c Config) Add(s Sig, term uint32) {
	c = c.withDefaults()
	bits := uint64(c.Bits)
	// Quantize, then derive k bits from a splitmix64-style sequence so
	// the code is deterministic across runs and platforms.
	x := uint64(term / uint32(c.Granularity))
	for i := 0; i < c.Hashes; i++ {
		x += 0x9e3779b97f4a7c15
		z := x
		z ^= z >> 30
		z *= 0xbf58476d1ce4e5b9
		z ^= z >> 27
		z *= 0x94d049bb133111eb
		z ^= z >> 31
		bit := z % bits
		s[bit>>6] |= 1 << (bit & 63)
	}
}

// FromDoc ORs every term of d into s and returns s (allocating when s is
// nil or mis-sized).
func (c Config) FromDoc(s Sig, d *document.Document) Sig {
	if len(s) != c.Words() {
		s = c.New()
	}
	for _, cell := range d.Cells {
		c.Add(s, cell.Term)
	}
	return s
}

// Zero reports whether no bit of s is set (an empty term set).
func Zero(s Sig) bool {
	for _, w := range s {
		if w != 0 {
			return false
		}
	}
	return true
}

// Overlaps reports whether a AND b is nonzero. A false return proves the
// two term sets are disjoint; a true return proves nothing.
func Overlaps(a, b Sig) bool {
	for i, w := range a {
		if w&b[i] != 0 {
			return true
		}
	}
	return false
}

// orInto ORs src into dst.
func orInto(dst, src Sig) {
	for i, w := range src {
		dst[i] |= w
	}
}

// Sidecar is a collection's signature file held resident: one signature
// per document, one aggregate per storage page, one aggregate per
// cluster of ClusterDocs consecutive ids, and the root aggregate (the OR
// of everything).
type Sidecar struct {
	cfg      Config
	file     *iosim.File
	words    int
	numDocs  int
	numPages int64
	docs     []uint64
	pages    []uint64
	clusters []uint64
	root     Sig
}

// Build scans c, computes the signatures under cfg and writes them to
// the empty sidecar file f, returning the resident sidecar. Page
// aggregates follow c's physical layout (every page a document spans ORs
// in that document), so Build must run after any reordering — the
// cluster-driven path is reorder first, then Build.
func Build(c *collection.Collection, f *iosim.File, cfg Config) (*Sidecar, error) {
	if f.Pages() != 0 {
		return nil, fmt.Errorf("signature: build target %q must be empty", f.Name())
	}
	cfg = cfg.withDefaults()
	words := cfg.Bits / 64
	numDocs := int(c.NumDocs())
	numPages := c.File().Pages()
	numClusters := (numDocs + cfg.ClusterDocs - 1) / cfg.ClusterDocs

	s := &Sidecar{
		cfg:      cfg,
		file:     f,
		words:    words,
		numDocs:  numDocs,
		numPages: numPages,
		docs:     make([]uint64, numDocs*words),
		pages:    make([]uint64, numPages*int64(words)),
		clusters: make([]uint64, numClusters*words),
		root:     make(Sig, words),
	}

	ps := int64(c.File().PageSize())
	sc := c.Scan()
	for {
		d, err := sc.NextReuse()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
		sig := s.doc(d.ID)
		for _, cell := range d.Cells {
			cfg.Add(sig, cell.Term)
		}
		ref, err := c.Ref(d.ID)
		if err != nil {
			return nil, err
		}
		first := ref.Off / ps
		last := (ref.Off + int64(ref.Len) - 1) / ps
		for p := first; p <= last; p++ {
			orInto(s.page(p), sig)
		}
		orInto(s.cluster(int(d.ID)/cfg.ClusterDocs), sig)
		orInto(s.root, sig)
	}

	if err := s.write(); err != nil {
		return nil, err
	}
	return s, nil
}

// Open reads a sidecar previously written by Build back from f with one
// sequential sweep (charged to the iosim file).
func Open(f *iosim.File) (*Sidecar, error) {
	raw := make([]byte, 0, f.Size())
	err := f.ReadRange(0, f.Pages(), func(_ int64, page []byte) error {
		raw = append(raw, page...)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("signature: %q: %w", f.Name(), err)
	}
	if len(raw) < headerSize {
		return nil, fmt.Errorf("signature: %q: truncated header", f.Name())
	}
	head := raw[:headerSize]
	if binary.LittleEndian.Uint32(head[0:]) != magic {
		return nil, fmt.Errorf("signature: %q: bad magic", f.Name())
	}
	if v := binary.LittleEndian.Uint32(head[4:]); v != version {
		return nil, fmt.Errorf("signature: %q: unsupported version %d", f.Name(), v)
	}
	cfg := Config{
		Bits:        int(binary.LittleEndian.Uint32(head[8:])),
		Hashes:      int(binary.LittleEndian.Uint32(head[12:])),
		Granularity: int(binary.LittleEndian.Uint32(head[16:])),
		ClusterDocs: int(binary.LittleEndian.Uint32(head[20:])),
	}
	numDocs := int(binary.LittleEndian.Uint64(head[24:]))
	numPages := int64(binary.LittleEndian.Uint64(head[32:]))
	numClusters := int(binary.LittleEndian.Uint64(head[40:]))
	words := cfg.Bits / 64

	s := &Sidecar{
		cfg:      cfg,
		file:     f,
		words:    words,
		numDocs:  numDocs,
		numPages: numPages,
		docs:     make([]uint64, numDocs*words),
		pages:    make([]uint64, numPages*int64(words)),
		clusters: make([]uint64, numClusters*words),
		root:     make(Sig, words),
	}
	off := headerSize
	for _, arr := range [][]uint64{s.docs, s.pages, s.clusters} {
		if off+len(arr)*8 > len(raw) {
			return nil, fmt.Errorf("signature: %q: truncated body", f.Name())
		}
		for i := range arr {
			arr[i] = binary.LittleEndian.Uint64(raw[off+i*8:])
		}
		off += len(arr) * 8
	}
	for i := 0; i < numDocs; i++ {
		orInto(s.root, s.doc(uint32(i)))
	}
	return s, nil
}

// write serializes the sidecar through f's writer.
func (s *Sidecar) write() error {
	w := s.file.Writer()
	head := make([]byte, headerSize)
	binary.LittleEndian.PutUint32(head[0:], magic)
	binary.LittleEndian.PutUint32(head[4:], version)
	binary.LittleEndian.PutUint32(head[8:], uint32(s.cfg.Bits))
	binary.LittleEndian.PutUint32(head[12:], uint32(s.cfg.Hashes))
	binary.LittleEndian.PutUint32(head[16:], uint32(s.cfg.Granularity))
	binary.LittleEndian.PutUint32(head[20:], uint32(s.cfg.ClusterDocs))
	binary.LittleEndian.PutUint64(head[24:], uint64(s.numDocs))
	binary.LittleEndian.PutUint64(head[32:], uint64(s.numPages))
	binary.LittleEndian.PutUint64(head[40:], uint64(len(s.clusters)/maxInt(s.words, 1)))
	if _, err := w.Write(head); err != nil {
		return err
	}
	var buf [8]byte
	for _, arr := range [][]uint64{s.docs, s.pages, s.clusters} {
		for _, v := range arr {
			binary.LittleEndian.PutUint64(buf[:], v)
			if _, err := w.Write(buf[:]); err != nil {
				return err
			}
		}
	}
	return w.Flush()
}

// Config returns the code parameters the sidecar was built with.
func (s *Sidecar) Config() Config { return s.cfg }

// File returns the backing sidecar file.
func (s *Sidecar) File() *iosim.File { return s.file }

// Pages returns the sidecar's size in storage pages — the sequential
// read cost of loading it.
func (s *Sidecar) Pages() int64 { return s.file.Pages() }

// NumDocs returns the number of per-document signatures.
func (s *Sidecar) NumDocs() int { return s.numDocs }

// NumPages returns the number of per-page aggregates (the collection
// file's page count at build time).
func (s *Sidecar) NumPages() int64 { return s.numPages }

// NumClusters returns the number of cluster aggregates.
func (s *Sidecar) NumClusters() int { return len(s.clusters) / maxInt(s.words, 1) }

// MemBytes returns the resident size of the signature arrays.
func (s *Sidecar) MemBytes() int64 {
	return int64(len(s.docs)+len(s.pages)+len(s.clusters)+len(s.root)) * 8
}

func (s *Sidecar) doc(id uint32) Sig {
	i := int(id) * s.words
	return Sig(s.docs[i : i+s.words])
}

func (s *Sidecar) page(p int64) Sig {
	i := p * int64(s.words)
	return Sig(s.pages[i : i+int64(s.words)])
}

func (s *Sidecar) cluster(i int) Sig {
	j := i * s.words
	return Sig(s.clusters[j : j+s.words])
}

// Doc returns document id's signature.
func (s *Sidecar) Doc(id uint32) Sig { return s.doc(id) }

// Page returns page p's aggregate.
func (s *Sidecar) Page(p int64) Sig { return s.page(p) }

// Cluster returns cluster i's aggregate.
func (s *Sidecar) Cluster(i int) Sig { return s.cluster(i) }

// ClusterOf returns the cluster index holding document id.
func (s *Sidecar) ClusterOf(id uint32) int { return int(id) / s.cfg.ClusterDocs }

// ClusterRange returns the document id range [lo, hi) of cluster i.
func (s *Sidecar) ClusterRange(i int) (lo, hi uint32) {
	lo = uint32(i * s.cfg.ClusterDocs)
	h := (i + 1) * s.cfg.ClusterDocs
	if h > s.numDocs {
		h = s.numDocs
	}
	return lo, uint32(h)
}

// Root returns the OR of every document signature — the whole
// collection's term-set aggregate.
func (s *Sidecar) Root() Sig { return s.root }

// PageSkip measures the pruning power of q against the page aggregates:
// how many pages a filtered sweep would skip and how many contiguous
// retained runs remain (each run resuming costs one random read). Used
// by the cost model's plan-time estimates.
func (s *Sidecar) PageSkip(q Sig) (skipped, runs int64) {
	inRun := false
	for p := int64(0); p < s.numPages; p++ {
		if Overlaps(s.page(p), q) {
			if !inRun {
				runs++
				inRun = true
			}
		} else {
			skipped++
			inRun = false
		}
	}
	return skipped, runs
}

// DocSkip counts the documents whose signature is disjoint from q.
func (s *Sidecar) DocSkip(q Sig) (skipped int64) {
	for i := 0; i < s.numDocs; i++ {
		if !Overlaps(s.doc(uint32(i)), q) {
			skipped++
		}
	}
	return skipped
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
