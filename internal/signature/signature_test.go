package signature

import (
	"testing"

	"textjoin/internal/collection"
	"textjoin/internal/document"
	"textjoin/internal/iosim"
)

// buildColl stores docs (term sets) on a small disk and returns the
// collection plus its disk.
func buildColl(t *testing.T, pageSize int, docs [][]uint32) (*collection.Collection, *iosim.Disk) {
	t.Helper()
	d := iosim.NewDisk(iosim.WithPageSize(pageSize))
	f, err := d.Create("c.col")
	if err != nil {
		t.Fatal(err)
	}
	b, err := collection.NewBuilder("c", f)
	if err != nil {
		t.Fatal(err)
	}
	for i, terms := range docs {
		counts := make(map[uint32]int, len(terms))
		for _, term := range terms {
			counts[term]++
		}
		if err := b.Add(document.New(uint32(i), counts)); err != nil {
			t.Fatal(err)
		}
	}
	c, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return c, d
}

// TestNoFalseNegatives is the package invariant: documents sharing a
// term always have overlapping signatures, under every configuration.
func TestNoFalseNegatives(t *testing.T) {
	docs := [][]uint32{
		{1, 5, 9},
		{5, 100, 2000},
		{7, 8},
		{2000},
		{},
		{40000, 40001, 40002},
	}
	c, d := buildColl(t, 256, docs)
	for _, cfg := range []Config{{}, {Bits: 64, Hashes: 1}, {Bits: 100, Hashes: 3, Granularity: 7, ClusterDocs: 2}} {
		f, err := d.Create("c.sig")
		if err != nil {
			t.Fatal(err)
		}
		sc, err := Build(c, f, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := range docs {
			for j := range docs {
				shared := false
				for _, a := range docs[i] {
					for _, b := range docs[j] {
						if a == b {
							shared = true
						}
					}
				}
				got := Overlaps(sc.Doc(uint32(i)), sc.Doc(uint32(j)))
				if shared && !got {
					t.Fatalf("cfg %+v: docs %d,%d share a term but signatures are disjoint", cfg, i, j)
				}
			}
		}
		// Aggregates must cover their members.
		for i := range docs {
			id := uint32(i)
			if !Zero(sc.Doc(id)) {
				if !Overlaps(sc.Cluster(sc.ClusterOf(id)), sc.Doc(id)) {
					t.Fatalf("cfg %+v: cluster aggregate misses doc %d", cfg, i)
				}
				if !Overlaps(sc.Root(), sc.Doc(id)) {
					t.Fatalf("cfg %+v: root aggregate misses doc %d", cfg, i)
				}
				ref, err := c.Ref(id)
				if err != nil {
					t.Fatal(err)
				}
				ps := int64(c.File().PageSize())
				for p := ref.Off / ps; p <= (ref.Off+int64(ref.Len)-1)/ps; p++ {
					if !Overlaps(sc.Page(p), sc.Doc(id)) {
						t.Fatalf("cfg %+v: page aggregate %d misses doc %d", cfg, p, i)
					}
				}
			}
		}
		if err := d.Remove("c.sig"); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRoundTrip pins that Open returns exactly what Build wrote.
func TestRoundTrip(t *testing.T) {
	docs := [][]uint32{{1, 2, 3}, {3, 4}, {1000, 2000, 3000}, {7}, {8, 9, 10, 11}}
	c, d := buildColl(t, 128, docs)
	f, err := d.Create("c.sig")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Bits: 192, Hashes: 2, Granularity: 3, ClusterDocs: 2}
	built, err := Build(c, f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := d.Open("c.sig")
	if err != nil {
		t.Fatal(err)
	}
	opened, err := Open(f2)
	if err != nil {
		t.Fatal(err)
	}
	if opened.Config() != built.Config() {
		t.Fatalf("config mismatch: %+v vs %+v", opened.Config(), built.Config())
	}
	if opened.NumDocs() != built.NumDocs() || opened.NumPages() != built.NumPages() || opened.NumClusters() != built.NumClusters() {
		t.Fatalf("shape mismatch")
	}
	for i := 0; i < built.NumDocs(); i++ {
		for w, v := range built.Doc(uint32(i)) {
			if opened.Doc(uint32(i))[w] != v {
				t.Fatalf("doc %d word %d differs", i, w)
			}
		}
	}
	for p := int64(0); p < built.NumPages(); p++ {
		for w, v := range built.Page(p) {
			if opened.Page(p)[w] != v {
				t.Fatalf("page %d word %d differs", p, w)
			}
		}
	}
	for i := 0; i < built.NumClusters(); i++ {
		for w, v := range built.Cluster(i) {
			if opened.Cluster(i)[w] != v {
				t.Fatalf("cluster %d word %d differs", i, w)
			}
		}
	}
	for w, v := range built.Root() {
		if opened.Root()[w] != v {
			t.Fatalf("root word %d differs", w)
		}
	}
}

// TestSkipMeasures sanity-checks the planner-facing skip measurements on
// a layout with two disjoint term ranges.
func TestSkipMeasures(t *testing.T) {
	var docs [][]uint32
	for i := 0; i < 32; i++ {
		base := uint32(0)
		if i >= 16 {
			base = 1 << 20
		}
		docs = append(docs, []uint32{base + uint32(3*i), base + uint32(3*i+1), base + uint32(3*i+2)})
	}
	c, d := buildColl(t, 64, docs)
	f, err := d.Create("c.sig")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := Build(c, f, Config{Bits: 4096, Hashes: 1, ClusterDocs: 4})
	if err != nil {
		t.Fatal(err)
	}
	q := sc.Doc(0) // first-range query: second-range docs must be skippable
	if got := sc.DocSkip(q); got < 16 {
		t.Fatalf("DocSkip = %d, want >= 16 (the disjoint half)", got)
	}
	skipped, runs := sc.PageSkip(q)
	if skipped <= 0 || runs <= 0 {
		t.Fatalf("PageSkip = (%d, %d), want positive skip and runs", skipped, runs)
	}
	if skipped+runs > sc.NumPages()+runs {
		t.Fatalf("impossible page accounting")
	}
}
