package costmodel

import "math"

// DefaultMatchSim is the Jaccard similarity the recall estimate assumes
// for a "true" match when the caller does not supply one. Top-λ answers
// are dominated by strongly overlapping pairs; 0.5 is a deliberately
// conservative midpoint — the banding S-curve is monotone in s, so
// pairs more similar than this are found with higher probability than
// the estimate promises.
const DefaultMatchSim = 0.5

// LSH carries the measured candidate volume of a MinHash sidecar and
// its banding shape, feeding the approximate plan estimate. Candidate
// fraction and run counts are measured against the resident bucket
// tables at plan time (CPU-only, like the signature prefilter's
// measurements).
type LSH struct {
	// SidecarPages is the one-time sequential cost of loading the
	// sidecar file.
	SidecarPages float64
	// CandidateFrac is the mean fraction of C1 documents that share at
	// least one bucket with a probe document.
	CandidateFrac float64
	// ScanRuns is the mean number of contiguous candidate-id runs per
	// probe: each run the filtered verify scan resumes costs one random
	// read.
	ScanRuns float64
	// Bands and Rows are the banding shape (b and r).
	Bands, Rows int
	// MatchSim is the Jaccard similarity assumed for a true match when
	// estimating recall; 0 selects DefaultMatchSim.
	MatchSim float64
}

// Recall is the banding S-curve 1 − (1 − s^rows)^bands: the probability
// that a pair with Jaccard similarity s shares at least one band key
// and therefore survives as a candidate.
func Recall(bands, rows int, s float64) float64 {
	if s <= 0 || bands <= 0 || rows <= 0 {
		return 0
	}
	if s >= 1 {
		return 1
	}
	return 1 - math.Pow(1-math.Pow(s, float64(rows)), float64(bands))
}

// LSHSeq prices the approximate join: C2 is read exactly as HHNL reads
// it (same batches, same X), but each batch's inner sweep touches only
// the candidate fraction of C1's pages, plus the one-time sidecar load.
func LSHSeq(in Input, sys System, q Query, p LSH) float64 {
	in = in.normalize()
	x := HHNLBatch(in, sys, q)
	if x <= 0 {
		return Infeasible
	}
	scans := math.Ceil(float64(in.C2.N) / x)
	if in.C2.N == 0 {
		scans = 0
	}
	inner := filteredScanCost(in.C1.D(sys), 1-p.CandidateFrac, p.ScanRuns, sys)
	return in.c2ReadCost(sys) + scans*inner + p.SidecarPages
}

// LSHRand is the worst-case approximate cost: the same contention
// surcharge as HHNLRand on top of the approximate sequential cost.
func LSHRand(in Input, sys System, q Query, p LSH) float64 {
	seq := LSHSeq(in, sys, q, p)
	if math.IsInf(seq, 1) {
		return Infeasible
	}
	return seq + (HHNLRand(in, sys, q) - HHNLSeq(in, sys, q))
}

// EstimateLSH evaluates the approximate plan: cost from the measured
// candidate volume, recall from the banding S-curve at MatchSim.
func EstimateLSH(in Input, sys System, q Query, p LSH) Estimate {
	s := p.MatchSim
	if s == 0 {
		s = DefaultMatchSim
	}
	return Estimate{
		Algorithm: AlgLSH,
		Seq:       LSHSeq(in, sys, q, p),
		Rand:      LSHRand(in, sys, q, p),
		Recall:    Recall(p.Bands, p.Rows, s),
	}
}
