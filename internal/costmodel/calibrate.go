package costmodel

// Calibration auditing: how well do the Section 5 formulas predict
// measured I/O cost? The integrated algorithm (Sections 6–7) stands or
// falls with this — it picks the join strategy purely from estimates, so
// a systematic estimation error on one algorithm silently turns into
// wrong picks. This file aggregates estimated-vs-measured samples into
// per-algorithm error histograms and detects the cells where the
// estimate-ranked winner differs from the measured one.
//
// Like the rest of the package it is pure arithmetic over numbers the
// caller supplies: samples come from cmd/benchreport replaying the
// planner's plan events across the experiment grid, with both costs in
// the paper's sequential-page-read units.

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// Sample is one estimated-vs-measured cost observation for one algorithm
// on one grid cell.
type Sample struct {
	// Label identifies the grid cell, e.g. "wsj-wsj/s2048".
	Label string
	// Algorithm whose cost was estimated and measured.
	Algorithm Algorithm
	// Estimated is the model cost (Seq variant) in sequential-page units.
	Estimated float64
	// Measured is the α-priced measured cost in the same units.
	Measured float64
}

// Ratio returns measured/estimated — 1.0 is a perfect model; 2.0 means
// the join cost twice the estimate. An estimate of zero yields +Inf
// unless the measurement is also zero.
func (s Sample) Ratio() float64 {
	if s.Estimated == 0 {
		if s.Measured == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return s.Measured / s.Estimated
}

// Log2Err returns log2(measured/estimated): 0 is perfect, +1 is 2×
// underestimation, −1 is 2× overestimation. The symmetric error used for
// the mean-absolute summary.
func (s Sample) Log2Err() float64 { return math.Log2(s.Ratio()) }

// DefaultRatioBounds are the measured/estimated bucket upper bounds of
// the error histograms: three overestimation bands, a ±5% "calibrated"
// band, and three underestimation bands (plus the implicit overflow).
var DefaultRatioBounds = []float64{0.25, 0.5, 0.8, 0.95, 1.05, 1.25, 2, 4}

// ErrorHistogram is the estimated-vs-measured error distribution of one
// algorithm: Counts[i] samples with previousBound < Ratio ≤ Bounds[i],
// one overflow bucket above the last bound.
type ErrorHistogram struct {
	Algorithm Algorithm
	Bounds    []float64
	Counts    []int64 // len(Bounds)+1
	N         int64
	// MeanAbsLog2 is the mean |log2(measured/estimated)|: 0 is a perfect
	// model, 1 means the typical estimate is off by 2× in one direction
	// or the other.
	MeanAbsLog2 float64
	// Worst identifies the sample with the largest |log2 error|.
	Worst      Sample
	WorstAbsL2 float64
}

// Mispick is a grid cell where ranking algorithms by estimated cost
// picks a different winner than ranking them by measured cost — exactly
// the cells where the integrated algorithm would run the wrong join.
type Mispick struct {
	Label         string
	EstimatedBest Algorithm
	MeasuredBest  Algorithm
	// Penalty is measured(EstimatedBest)/measured(MeasuredBest): how much
	// more the integrated algorithm's pick costs than the true winner.
	Penalty float64
}

// Calibration aggregates samples.
type Calibration struct {
	bounds  []float64
	samples []Sample
}

// NewCalibration creates an empty aggregation; nil bounds use
// DefaultRatioBounds.
func NewCalibration(bounds []float64) *Calibration {
	if bounds == nil {
		bounds = DefaultRatioBounds
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Calibration{bounds: b}
}

// Add records one sample. Samples with non-finite or negative values are
// kept out of the histograms but would poison ratios; they are rejected.
func (c *Calibration) Add(s Sample) error {
	if math.IsNaN(s.Estimated) || math.IsNaN(s.Measured) || s.Estimated < 0 || s.Measured < 0 {
		return fmt.Errorf("costmodel: invalid calibration sample %+v", s)
	}
	c.samples = append(c.samples, s)
	return nil
}

// Samples returns the recorded samples in insertion order.
func (c *Calibration) Samples() []Sample { return c.samples }

// Histogram aggregates the error distribution of one algorithm. An
// algorithm with no samples returns a zero-count histogram.
func (c *Calibration) Histogram(a Algorithm) ErrorHistogram {
	h := ErrorHistogram{
		Algorithm: a,
		Bounds:    c.bounds,
		Counts:    make([]int64, len(c.bounds)+1),
	}
	var sumAbs float64
	for _, s := range c.samples {
		if s.Algorithm != a {
			continue
		}
		r := s.Ratio()
		i := 0
		for i < len(c.bounds) && r > c.bounds[i] {
			i++
		}
		h.Counts[i]++
		h.N++
		abs := math.Abs(s.Log2Err())
		sumAbs += abs
		if abs >= h.WorstAbsL2 {
			h.Worst, h.WorstAbsL2 = s, abs
		}
	}
	if h.N > 0 {
		h.MeanAbsLog2 = sumAbs / float64(h.N)
	}
	return h
}

// Histograms returns the three per-algorithm histograms in the paper's
// order.
func (c *Calibration) Histograms() []ErrorHistogram {
	return []ErrorHistogram{
		c.Histogram(AlgHHNL),
		c.Histogram(AlgHVNL),
		c.Histogram(AlgVVM),
	}
}

// Mispicks returns, label by label, the cells where the estimated
// ranking and the measured ranking disagree about the winning algorithm.
// Labels with fewer than two algorithms sampled cannot be ranked and are
// skipped. Results are sorted by label.
func (c *Calibration) Mispicks() []Mispick {
	type cell struct {
		est, meas map[Algorithm]float64
	}
	cells := make(map[string]*cell)
	var labels []string
	for _, s := range c.samples {
		cl, ok := cells[s.Label]
		if !ok {
			cl = &cell{est: make(map[Algorithm]float64), meas: make(map[Algorithm]float64)}
			cells[s.Label] = cl
			labels = append(labels, s.Label)
		}
		cl.est[s.Algorithm] = s.Estimated
		cl.meas[s.Algorithm] = s.Measured
	}
	sort.Strings(labels)

	argmin := func(m map[Algorithm]float64) Algorithm {
		best := Algorithm(-1)
		bestV := math.Inf(1)
		// Ties break in the paper's presentation order HHNL, HVNL, VVM.
		for _, a := range []Algorithm{AlgHHNL, AlgHVNL, AlgVVM} {
			if v, ok := m[a]; ok && v < bestV {
				best, bestV = a, v
			}
		}
		return best
	}

	var out []Mispick
	for _, label := range labels {
		cl := cells[label]
		if len(cl.est) < 2 {
			continue
		}
		eb, mb := argmin(cl.est), argmin(cl.meas)
		if eb == mb {
			continue
		}
		mp := Mispick{Label: label, EstimatedBest: eb, MeasuredBest: mb, Penalty: math.Inf(1)}
		if best := cl.meas[mb]; best > 0 {
			mp.Penalty = cl.meas[eb] / best
		}
		out = append(out, mp)
	}
	return out
}

// WriteReport renders the calibration audit as human-readable text: one
// error histogram per algorithm, then the mispick table. The format is
// markdown-friendly (it is what cmd/benchreport -calibrate writes).
func (c *Calibration) WriteReport(w io.Writer) error {
	ew := &reportWriter{w: w}
	ew.printf("# Cost-model calibration report\n\n")
	ew.printf("%d samples; ratio = measured/estimated cost (1.0 = perfect model).\n\n", len(c.samples))
	for _, h := range c.Histograms() {
		ew.printf("## %v\n\n", h.Algorithm)
		if h.N == 0 {
			ew.printf("no samples\n\n")
			continue
		}
		ew.printf("samples=%d mean|log2 err|=%.3f worst=%s (ratio %.3g)\n\n",
			h.N, h.MeanAbsLog2, h.Worst.Label, h.Worst.Ratio())
		prev := 0.0
		for i, n := range h.Counts {
			var band string
			switch {
			case i == 0:
				band = fmt.Sprintf("      ratio ≤ %-5.3g", h.Bounds[0])
			case i < len(h.Bounds):
				band = fmt.Sprintf("%5.3g < ratio ≤ %-5.3g", prev, h.Bounds[i])
			default:
				band = fmt.Sprintf("%5.3g < ratio        ", prev)
			}
			if i < len(h.Bounds) {
				prev = h.Bounds[i]
			}
			ew.printf("    %s %4d %s\n", band, n, bar(n, h.N))
		}
		ew.printf("\n")
	}
	mis := c.Mispicks()
	ew.printf("## Integrated-algorithm mispicks\n\n")
	if len(mis) == 0 {
		ew.printf("none: the estimated ranking matches the measured ranking on every cell.\n")
	} else {
		for _, m := range mis {
			ew.printf("  %-24s estimated winner %v, measured winner %v, penalty %.3gx\n",
				m.Label, m.EstimatedBest, m.MeasuredBest, m.Penalty)
		}
	}
	return ew.err
}

// bar renders a proportional ASCII bar (max 40 chars).
func bar(n, total int64) string {
	if total == 0 || n == 0 {
		return ""
	}
	w := int(40 * n / total)
	if w == 0 {
		w = 1
	}
	out := make([]byte, w)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}

type reportWriter struct {
	w   io.Writer
	err error
}

func (r *reportWriter) printf(format string, args ...any) {
	if r.err == nil {
		_, r.err = fmt.Fprintf(r.w, format, args...)
	}
}
