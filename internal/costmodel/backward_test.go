package costmodel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBackwardMatchesForwardOnSymmetricInput(t *testing.T) {
	// Self join: both orders scan the same sizes, so the costs agree up
	// to the batch-size difference from the tracker reservation.
	sys := baseSys()
	q := baseQ()
	in := Input{C1: doe, C2: doe}
	fw := HHNLSeq(in, sys, q)
	bw := HHNLBackwardSeq(in, sys, q)
	if math.IsInf(fw, 1) || math.IsInf(bw, 1) {
		t.Fatalf("infeasible: fw=%v bw=%v", fw, bw)
	}
	if bw < fw/2 || bw > fw*2 {
		t.Errorf("self join: bw %v should be within 2× of fw %v", bw, fw)
	}
}

func TestBackwardWinsWhenC1MuchSmaller(t *testing.T) {
	// The paper: "The backward order can be more efficient if C1 is much
	// smaller than C2." A tiny C1 fits in one batch, so backward scans
	// the big C2 once, while forward re-scans tiny C1 often but must
	// still read all of C2 — the savings come from holding ALL of C1
	// resident and scanning C2 exactly once versus forward's many C1
	// scans... verify the formulas agree with the intuition.
	sys := baseSys()
	q := baseQ()
	small := Collection{N: 500, K: 300, T: 30000}
	in := Input{C1: small, C2: wsj}
	fw := HHNLSeq(in, sys, q)
	bw := HHNLBackwardSeq(in, sys, q)
	if !(bw <= fw) {
		t.Errorf("bw %v should not exceed fw %v when C1 ≪ C2", bw, fw)
	}
	// Backward with everything resident: D1 + one scan of C2.
	want := small.D(sys) + wsj.D(sys)
	if math.Abs(bw-want) > 1e-6 {
		t.Errorf("bw = %v, want %v", bw, want)
	}
}

func TestBackwardTrackerReservation(t *testing.T) {
	// A huge N2 makes the tracker reservation 4·λ·N2/P dominate; with B
	// too small the backward order is infeasible while forward is fine.
	sys := System{B: 100, P: 4096, Alpha: 5}
	q := Query{Lambda: 100, Delta: 0.1}
	in := Input{C1: Collection{N: 10, K: 50, T: 500}, C2: doe}
	if got := HHNLBackwardSeq(in, sys, q); !math.IsInf(got, 1) {
		t.Errorf("backward with huge tracker set = %v, want +Inf", got)
	}
	if got := HHNLSeq(in, sys, q); math.IsInf(got, 1) {
		t.Errorf("forward should stay feasible, got +Inf")
	}
}

func TestBackwardRandAtLeastSeq(t *testing.T) {
	sys := baseSys()
	q := baseQ()
	for _, c1 := range []Collection{wsj, fr, doe} {
		for _, c2 := range []Collection{wsj, fr, doe} {
			in := Input{C1: c1, C2: c2}
			seq := HHNLBackwardSeq(in, sys, q)
			rnd := HHNLBackwardRand(in, sys, q)
			if math.IsInf(seq, 1) != math.IsInf(rnd, 1) {
				t.Errorf("feasibility mismatch for %v/%v", c1, c2)
				continue
			}
			if !math.IsInf(seq, 1) && rnd < seq-1e-9 {
				t.Errorf("rand %v < seq %v", rnd, seq)
			}
		}
	}
}

// Property: backward costs are positive or infeasible and monotone
// non-increasing in B.
func TestQuickBackwardMonotone(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := baseQ()
		in := Input{C1: randomCollection(r), C2: randomCollection(r)}
		prev := math.Inf(1)
		for _, b := range []int64{100, 1000, 10000, 100000, 1000000} {
			sys := System{B: b, P: 4096, Alpha: 5}
			c := HHNLBackwardSeq(in, sys, q)
			if !math.IsInf(c, 1) && c <= 0 {
				return false
			}
			if c > prev+1e-6 {
				return false
			}
			if !math.IsInf(c, 1) {
				prev = c
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
