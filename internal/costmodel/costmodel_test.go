package costmodel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// The paper's statistics table for the three TREC collections.
var (
	wsj = Collection{N: 98736, K: 329, T: 156298}
	fr  = Collection{N: 26207, K: 1017, T: 126258}
	doe = Collection{N: 226087, K: 89, T: 186225}
)

func baseSys() System { return DefaultSystem() }
func baseQ() Query    { return DefaultQuery() }

func TestDerivedQuantitiesMatchPaperTable(t *testing.T) {
	// The paper's table says the page size is "4k", but the derived rows
	// (collection size, avg document size, avg entry size) only
	// reproduce with P = 4000 bytes: e.g. WSJ 5·329·98736/4000 =
	// 40604.6 ≈ the printed 40605 pages, while /4096 gives 39653. We
	// therefore evaluate the table at P = 4000 and record the
	// discrepancy in EXPERIMENTS.md.
	sys := System{B: 10000, P: 4000, Alpha: 5}
	cases := []struct {
		name       string
		c          Collection
		wantD      float64 // collection size in pages
		wantS      float64 // avg doc size in pages
		wantJ      float64 // avg inverted entry size in pages
		tolD, tolS float64
	}{
		// Paper's table: WSJ 40605 pages, 0.41 pages/doc, 0.26 pages/entry.
		{"WSJ", wsj, 40605, 0.41, 0.26, 0.01, 0.01},
		// FR 33315 pages, 1.27 pages/doc, 0.264 pages/entry.
		{"FR", fr, 33315, 1.27, 0.264, 0.01, 0.01},
		// DOE 25152 pages, 0.111 pages/doc, 0.135 pages/entry.
		{"DOE", doe, 25152, 0.111, 0.135, 0.01, 0.01},
	}
	for _, c := range cases {
		d := c.c.D(sys)
		if math.Abs(d-c.wantD)/c.wantD > c.tolD {
			t.Errorf("%s: D = %.0f, want ≈ %.0f", c.name, d, c.wantD)
		}
		s := c.c.S(sys)
		if math.Abs(s-c.wantS)/c.wantS > 0.02 {
			t.Errorf("%s: S = %.3f, want ≈ %.3f", c.name, s, c.wantS)
		}
		j := c.c.J(sys)
		if math.Abs(j-c.wantJ)/c.wantJ > 0.02 {
			t.Errorf("%s: J = %.3f, want ≈ %.3f", c.name, j, c.wantJ)
		}
		// I = D when cell sizes match (paper's observation).
		if math.Abs(c.c.I(sys)-d) > 1e-6 {
			t.Errorf("%s: I = %v != D = %v", c.name, c.c.I(sys), d)
		}
	}
}

func TestBTreePaperExample(t *testing.T) {
	// "for a document collection with 100,000 distinct terms, the B+tree
	// takes about 220 pages of size 4KB".
	c := Collection{T: 100000}
	if got := c.Bt(baseSys()); math.Abs(got-219.7) > 0.5 {
		t.Errorf("Bt = %v, want ≈ 220", got)
	}
}

func TestOverlapFormula(t *testing.T) {
	cases := []struct {
		t1, t2 int64
		want   float64
	}{
		{100, 100, 0.8},      // equal: 0.8·T1/T2 = 0.8
		{50, 100, 0.4},       // T1 ≤ T2: 0.8·T1/T2
		{150, 100, 0.8},      // T2 < T1 < 5T2
		{499, 100, 0.8},      // still in the middle band
		{500, 100, 0.8},      // T1 ≥ 5T2: 1 − T2/T1 = 0.8 (continuous here)
		{1000, 100, 0.9},     // 1 − 100/1000
		{100000, 100, 0.999}, // approaches 1
		{0, 100, 0},          // degenerate
		{100, 0, 0},          // degenerate
	}
	for _, c := range cases {
		if got := Overlap(c.t1, c.t2); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Overlap(%d,%d) = %v, want %v", c.t1, c.t2, got, c.want)
		}
	}
}

func TestNormalizeDefaults(t *testing.T) {
	in := Input{C1: wsj, C2: fr}.normalize()
	if in.InvOnC1 != wsj || in.InvOnC2 != fr {
		t.Error("inverted-file stats should default to collections")
	}
	if in.Q != Overlap(wsj.T, fr.T) {
		t.Errorf("Q = %v, want derived %v", in.Q, Overlap(wsj.T, fr.T))
	}
	in2 := Input{C1: wsj, C2: fr, Q: 0.5, InvOnC2: doe}.normalize()
	if in2.Q != 0.5 || in2.InvOnC2 != doe {
		t.Error("explicit values overwritten")
	}
}

func TestHHNLBatchPaperFormula(t *testing.T) {
	sys := baseSys()
	q := baseQ()
	in := Input{C1: wsj, C2: wsj}
	x := HHNLBatch(in, sys, q)
	want := (float64(sys.B) - math.Ceil(wsj.S(sys))) /
		(wsj.S(sys) + 4*20/4096.0)
	if math.Abs(x-want) > 1e-9 {
		t.Errorf("X = %v, want %v", x, want)
	}
	if x < 1 {
		t.Errorf("X = %v < 1 at base memory", x)
	}
}

func TestHHNLSeqStructure(t *testing.T) {
	sys := baseSys()
	q := baseQ()
	in := Input{C1: wsj, C2: wsj}
	x := HHNLBatch(in, sys, q)
	want := wsj.D(sys) + math.Ceil(float64(wsj.N)/x)*wsj.D(sys)
	if got := HHNLSeq(in, sys, q); math.Abs(got-want) > 1e-6 {
		t.Errorf("hhs = %v, want %v", got, want)
	}
}

func TestHHNLRandExceedsSeq(t *testing.T) {
	sys := baseSys()
	q := baseQ()
	for _, c := range []Collection{wsj, fr, doe} {
		in := Input{C1: c, C2: c}
		hhs, hhr := HHNLSeq(in, sys, q), HHNLRand(in, sys, q)
		if hhr < hhs {
			t.Errorf("hhr %v < hhs %v for %+v", hhr, hhs, c)
		}
	}
}

func TestHHNLSmallC2FitsEntirely(t *testing.T) {
	// N2 < X: the whole outer collection fits; the random surcharge uses
	// the block formula.
	sys := baseSys()
	q := baseQ()
	small := Collection{N: 50, K: 300, T: 9000}
	in := Input{C1: wsj, C2: small}
	hhs := HHNLSeq(in, sys, q)
	if math.IsInf(hhs, 1) {
		t.Fatal("hhs infeasible")
	}
	// One scan of C1 suffices.
	want := small.D(sys) + wsj.D(sys)
	if math.Abs(hhs-want) > 1e-6 {
		t.Errorf("hhs = %v, want %v", hhs, want)
	}
	hhr := HHNLRand(in, sys, q)
	if hhr <= hhs {
		t.Errorf("hhr %v should exceed hhs %v", hhr, hhs)
	}
}

func TestHHNLInfeasible(t *testing.T) {
	sys := System{B: 1, P: 4096, Alpha: 5}
	in := Input{C1: fr, C2: fr} // one FR document needs 2 pages
	if got := HHNLSeq(in, sys, baseQ()); !math.IsInf(got, 1) {
		t.Errorf("hhs = %v, want +Inf", got)
	}
	if got := HHNLRand(in, sys, baseQ()); !math.IsInf(got, 1) {
		t.Errorf("hhr = %v, want +Inf", got)
	}
}

func TestHVNLBufferEntries(t *testing.T) {
	sys := baseSys()
	q := baseQ()
	in := Input{C1: wsj, C2: wsj}.normalize()
	x := HVNLBufferEntries(in, sys, q)
	want := math.Floor((float64(sys.B) - math.Ceil(wsj.S(sys)) - wsj.Bt(sys) -
		4*float64(wsj.N)*0.1/4096) / (wsj.J(sys) + 3.0/4096))
	if x != want {
		t.Errorf("X = %v, want %v", x, want)
	}
}

func TestHVNLRegimes(t *testing.T) {
	q := baseQ()
	small := Collection{N: 100, K: 50, T: 2000}

	// Regime 1: memory holds the whole inverted file (X ≥ T1).
	bigSys := System{B: 200000, P: 4096, Alpha: 5}
	in := Input{C1: small, C2: small}
	hvs := HVNLSeq(in, bigSys, q)
	seqAll := small.D(bigSys) + small.I(bigSys) + small.Bt(bigSys)
	needed := float64(small.T) * 0.8 * math.Ceil(small.J(bigSys)) * 5
	randNeeded := small.D(bigSys) + needed + small.Bt(bigSys)
	want := math.Min(seqAll, randNeeded)
	if math.Abs(hvs-want) > 1e-6 {
		t.Errorf("regime 1 hvs = %v, want %v", hvs, want)
	}

	// WSJ self join walks all three regimes as B grows: X < T2·q at the
	// base B (regime 3), T2·q ≤ X < T1 around B ≈ 35000 (regime 2),
	// X ≥ T1 beyond B ≈ 41000 (regime 1). Costs must strictly improve
	// from regime 3 to regime 2.
	wsjIn := Input{C1: wsj, C2: wsj}
	r3 := HVNLSeq(wsjIn, System{B: 1000, P: 4096, Alpha: 5}, q)
	r2 := HVNLSeq(wsjIn, System{B: 35000, P: 4096, Alpha: 5}, q)
	r1 := HVNLSeq(wsjIn, System{B: 60000, P: 4096, Alpha: 5}, q)
	if math.IsInf(r3, 1) || math.IsInf(r2, 1) || math.IsInf(r1, 1) {
		t.Fatalf("unexpected infeasible: r3=%v r2=%v r1=%v", r3, r2, r1)
	}
	if !(r3 > r2) {
		t.Errorf("regime 3 cost %v should exceed regime 2 cost %v", r3, r2)
	}
	if r1 > r2+1e-6 {
		t.Errorf("regime 1 cost %v should not exceed regime 2 cost %v", r1, r2)
	}
}

func TestHVNLInfeasible(t *testing.T) {
	sys := System{B: 2, P: 4096, Alpha: 5}
	in := Input{C1: wsj, C2: wsj}
	if got := HVNLSeq(in, sys, baseQ()); !math.IsInf(got, 1) {
		t.Errorf("hvs = %v, want +Inf", got)
	}
	if got := HVNLRand(in, sys, baseQ()); !math.IsInf(got, 1) {
		t.Errorf("hvr = %v, want +Inf", got)
	}
}

func TestHVNLRandAtLeastSeq(t *testing.T) {
	sys := baseSys()
	q := baseQ()
	for _, c1 := range []Collection{wsj, fr, doe} {
		for _, c2 := range []Collection{wsj, fr, doe} {
			in := Input{C1: c1, C2: c2}
			hvs, hvr := HVNLSeq(in, sys, q), HVNLRand(in, sys, q)
			if hvr < hvs-1e-9 {
				t.Errorf("hvr %v < hvs %v for C1=%+v C2=%+v", hvr, hvs, c1, c2)
			}
		}
	}
}

func TestVVMPartitions(t *testing.T) {
	sys := baseSys()
	q := baseQ()
	// WSJ self join: SM = 4·0.1·98736²/4096 pages ≈ 952k pages >> B.
	in := Input{C1: wsj, C2: wsj}
	parts := VVMPartitions(in, sys, q)
	sm := 4 * 0.1 * float64(wsj.N) * float64(wsj.N) / 4096
	m := float64(sys.B) - 2*math.Ceil(wsj.J(sys))
	if parts != math.Ceil(sm/m) {
		t.Errorf("partitions = %v, want %v", parts, math.Ceil(sm/m))
	}
	// A tiny pair needs exactly one pass.
	tiny := Collection{N: 10, K: 100, T: 500}
	if got := VVMPartitions(Input{C1: tiny, C2: tiny}, sys, q); got != 1 {
		t.Errorf("tiny partitions = %v, want 1", got)
	}
}

func TestVVMSeqAndRand(t *testing.T) {
	sys := baseSys()
	q := baseQ()
	in := Input{C1: fr, C2: fr}
	parts := VVMPartitions(in, sys, q)
	wantSeq := 2 * fr.I(sys) * parts
	if got := VVMSeq(in, sys, q); math.Abs(got-wantSeq) > 1e-6 {
		t.Errorf("vvs = %v, want %v", got, wantSeq)
	}
	wantRand := 2 * math.Min(fr.I(sys), float64(fr.T)) * 5 * parts
	if got := VVMRand(in, sys, q); math.Abs(got-wantRand) > 1e-6 {
		t.Errorf("vvr = %v, want %v", got, wantRand)
	}
}

func TestVVMInfeasible(t *testing.T) {
	sys := System{B: 1, P: 4096, Alpha: 5}
	in := Input{C1: fr, C2: fr}
	if got := VVMSeq(in, sys, baseQ()); !math.IsInf(got, 1) {
		t.Errorf("vvs = %v, want +Inf", got)
	}
	if got := VVMRand(in, sys, baseQ()); !math.IsInf(got, 1) {
		t.Errorf("vvr = %v, want +Inf", got)
	}
}

func TestFindingHVNLWinsOnSmallSelections(t *testing.T) {
	// Paper finding 2: with a very small participating C2 (m ≲ 100),
	// HVNL has a very good chance to outperform the others.
	sys := baseSys()
	q := baseQ()
	m := int64(20)
	sub := Collection{N: m, K: wsj.K, T: int64(hvnlGrowth(wsj, float64(m)))}
	in := Input{C1: wsj, C2: sub, InvOnC1: wsj, InvOnC2: wsj, C2Random: true}
	alg, ests := Choose(in, sys, q)
	if alg != AlgHVNL {
		t.Errorf("Choose = %v (estimates %+v), want HVNL", alg, ests)
	}
}

func TestFindingVVMWinsOnFewLargeDocs(t *testing.T) {
	// Paper finding 3: few documents, large collection size (N1·N2 <
	// 10000·B, collections too large for memory) favors VVM.
	sys := baseSys()
	q := baseQ()
	// FR shrunk 64×: 409 docs of 65088 terms each (Group 5 transform).
	few := Collection{N: fr.N / 64, K: fr.K * 64, T: fr.T}
	in := Input{C1: few, C2: few}
	alg, ests := Choose(in, sys, q)
	if alg != AlgVVM {
		t.Errorf("Choose = %v (estimates %+v), want VVM", alg, ests)
	}
}

func TestFindingHHNLWinsOtherwise(t *testing.T) {
	// Paper finding 4: in most other cases plain HHNL performs best —
	// e.g. the DOE self join at base parameters.
	sys := baseSys()
	q := baseQ()
	in := Input{C1: doe, C2: doe}
	alg, ests := Choose(in, sys, q)
	if alg != AlgHHNL {
		t.Errorf("Choose = %v (estimates %+v), want HHNL", alg, ests)
	}
}

func TestEstimateAllShape(t *testing.T) {
	ests := EstimateAll(Input{C1: wsj, C2: doe}, baseSys(), baseQ())
	if len(ests) != 3 {
		t.Fatalf("estimates = %v", ests)
	}
	seen := map[Algorithm]bool{}
	for _, e := range ests {
		seen[e.Algorithm] = true
		if e.Seq <= 0 || e.Rand <= 0 {
			t.Errorf("%v: non-positive cost %+v", e.Algorithm, e)
		}
	}
	if !seen[AlgHHNL] || !seen[AlgHVNL] || !seen[AlgVVM] {
		t.Errorf("missing algorithms: %v", ests)
	}
}

func TestAlgorithmString(t *testing.T) {
	if AlgHHNL.String() != "HHNL" || AlgHVNL.String() != "HVNL" || AlgVVM.String() != "VVM" {
		t.Error("names wrong")
	}
	if Algorithm(9).String() == "" {
		t.Error("unknown name empty")
	}
}

func randomCollection(r *rand.Rand) Collection {
	k := float64(r.Intn(1000) + 10)
	n := int64(r.Intn(200000) + 100)
	minT := int64(k) + 1
	return Collection{N: n, K: k, T: minT + int64(r.Intn(300000))}
}

// Property: the HHNL and HVNL random-variant costs are at least their
// sequential variants (α ≥ 1), and all costs are positive or infeasible.
// VVM is excluded by design: the paper's vvr charges α per *entry*
// (min{I,T} random I/Os), so with multi-page entries and small α the
// formula can dip below vvs — a quirk of the paper's own formula that
// TestVVMSeqAndRand pins down exactly.
func TestQuickRandAtLeastSeq(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		sys := System{B: int64(r.Intn(50000) + 100), P: 4096, Alpha: 1 + 9*r.Float64()}
		q := Query{Lambda: int64(r.Intn(50) + 1), Delta: r.Float64()*0.5 + 0.01}
		in := Input{C1: randomCollection(r), C2: randomCollection(r)}
		pairs := [][2]float64{
			{HHNLSeq(in, sys, q), HHNLRand(in, sys, q)},
			{HVNLSeq(in, sys, q), HVNLRand(in, sys, q)},
		}
		for _, p := range pairs {
			seq, rnd := p[0], p[1]
			if math.IsInf(seq, 1) != math.IsInf(rnd, 1) {
				return false
			}
			if math.IsInf(seq, 1) {
				continue
			}
			if seq <= 0 || rnd < seq-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: costs are monotone in α for fixed inputs.
func TestQuickMonotoneInAlpha(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		sys := System{B: int64(r.Intn(30000) + 500), P: 4096, Alpha: 2}
		sysHi := sys
		sysHi.Alpha = 8
		q := baseQ()
		in := Input{C1: randomCollection(r), C2: randomCollection(r)}
		fns := []func(Input, System, Query) float64{HHNLRand, HVNLRand, VVMRand, HHNLSeq, VVMSeq}
		for _, fn := range fns {
			lo, hi := fn(in, sys, q), fn(in, sysHi, q)
			if math.IsInf(lo, 1) || math.IsInf(hi, 1) {
				continue
			}
			if hi < lo-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: VVM partitions never decrease when memory shrinks, and more
// memory never makes any sequential cost worse.
func TestQuickMonotoneInMemory(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := baseQ()
		in := Input{C1: randomCollection(r), C2: randomCollection(r)}
		prevCosts := [3]float64{math.Inf(1), math.Inf(1), math.Inf(1)}
		for _, b := range []int64{100, 1000, 10000, 100000} {
			sys := System{B: b, P: 4096, Alpha: 5}
			costs := [3]float64{HHNLSeq(in, sys, q), HVNLSeq(in, sys, q), VVMSeq(in, sys, q)}
			for i := range costs {
				if costs[i] > prevCosts[i]+1e-6 {
					return false
				}
			}
			prevCosts = costs
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: Choose always returns the minimum sequential estimate.
func TestQuickChooseIsArgmin(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		sys := System{B: int64(r.Intn(50000) + 100), P: 4096, Alpha: 5}
		q := baseQ()
		in := Input{C1: randomCollection(r), C2: randomCollection(r)}
		alg, ests := Choose(in, sys, q)
		var chosen float64
		minSeq := math.Inf(1)
		for _, e := range ests {
			if e.Algorithm == alg {
				chosen = e.Seq
			}
			if e.Seq < minSeq {
				minSeq = e.Seq
			}
		}
		return chosen == minSeq || (math.IsInf(chosen, 1) && math.IsInf(minSeq, 1))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
