package costmodel

import "math"

// The paper's concluding remarks list "(2) develop cost formulas that
// include CPU cost and communication cost" as further study. This file
// provides that extension, structured so the I/O-only formulas of
// Section 5 remain the default (CPUParams/NetParams zero values
// contribute nothing).
//
// CPU cost is estimated from the dominant per-algorithm operation counts:
//
//   - HHNL compares every document pair by merging two sorted cell lists:
//     ≈ N1·N2·(K1 + K2) cell steps.
//   - HVNL walks, for every outer document, the inverted list of each of
//     its terms that appears in C1: ≈ N2·K2·q·(N1·K1/T1) accumulations
//     (the inner factor is the average posting-list length).
//   - VVM accumulates over every matching posting pair: the terms common
//     to both files contribute ≈ min(T1,T2)·overlap·(N1·K1/T1)·(N2·K2/T2)
//     accumulations per pass.
//
// Operation counts convert to page-read-equivalents through
// CPUParams.OpsPerPageRead: how many cell operations take as long as one
// sequential page read (≈ 500000 for a 1990s disk at 5 ms/page and 10 ns
// per operation; the default 0 disables CPU accounting, reproducing the
// paper's I/O-only analysis "as if we have a centralized environment
// where I/O cost dominates CPU cost").
//
// Communication cost models the multidatabase setting of the
// introduction: a collection (or its inverted file) that lives at a
// remote site must be shipped to the join site once per use. Shipping is
// charged per page via NetParams.CostPerPage, again in
// sequential-page-read equivalents.

// CPUParams configures CPU-cost accounting.
type CPUParams struct {
	// OpsPerPageRead is how many cell operations cost as much time as
	// one sequential page read. Zero disables CPU accounting.
	OpsPerPageRead float64
}

// NetParams configures communication-cost accounting.
type NetParams struct {
	// CostPerPage is the cost of shipping one page between sites, in
	// sequential-page-read equivalents. Zero disables communication
	// accounting.
	CostPerPage float64
	// C1Remote and C2Remote mark which collections live away from the
	// join site.
	C1Remote bool
	C2Remote bool
}

// Breakdown decomposes an algorithm's total cost.
type Breakdown struct {
	Algorithm Algorithm
	IO        float64
	CPU       float64
	Comm      float64
}

// Total returns IO + CPU + Comm.
func (b Breakdown) Total() float64 { return b.IO + b.CPU + b.Comm }

// avgPostings returns the average posting-list length N·K/T of a
// collection, 0 for a degenerate one.
func avgPostings(c Collection) float64 {
	if c.T == 0 {
		return 0
	}
	return float64(c.N) * c.K / float64(c.T)
}

// HHNLOps estimates HHNL's cell operations: every pair merges two sorted
// lists.
func HHNLOps(in Input) float64 {
	in = in.normalize()
	return float64(in.C1.N) * float64(in.C2.N) * (in.C1.K + in.C2.K)
}

// HVNLOps estimates HVNL's accumulation operations.
func HVNLOps(in Input) float64 {
	in = in.normalize()
	return float64(in.C2.N) * in.C2.K * in.Q * avgPostings(in.InvOnC1)
}

// VVMOps estimates VVM's accumulation operations per full join (all
// passes together process each pair once; the extra passes repeat I/O,
// not accumulation, because each pass filters to its own outer range).
func VVMOps(in Input) float64 {
	in = in.normalize()
	common := math.Min(float64(in.InvOnC1.T), float64(in.C2.T)) * in.Q
	// Posting lengths: C1's by its inverted file; C2's restricted to the
	// participating documents.
	post2 := 0.0
	if in.C2.T > 0 {
		post2 = float64(in.C2.N) * in.C2.K / float64(in.C2.T)
	}
	return common * avgPostings(in.InvOnC1) * post2
}

// cpuCost converts operations to page-read-equivalents.
func cpuCost(ops float64, cpu CPUParams) float64 {
	if cpu.OpsPerPageRead <= 0 {
		return 0
	}
	return ops / cpu.OpsPerPageRead
}

// commCost charges the pages each algorithm must ship from remote sites.
func commCost(alg Algorithm, in Input, sys System, q Query, net NetParams) float64 {
	if net.CostPerPage <= 0 || (!net.C1Remote && !net.C2Remote) {
		return 0
	}
	in = in.normalize()
	var pages float64
	switch alg {
	case AlgHHNL:
		// Raw documents travel.
		if net.C1Remote {
			pages += in.C1.D(sys)
		}
		if net.C2Remote {
			pages += in.C2.D(sys)
		}
	case AlgHVNL:
		// C2's documents travel; of C1 only the needed inverted file
		// entries (plus the B+tree) do.
		if net.C2Remote {
			pages += in.C2.D(sys)
		}
		if net.C1Remote {
			needed := float64(in.C2.T) * in.Q * math.Ceil(in.InvOnC1.J(sys))
			pages += math.Min(needed, in.InvOnC1.I(sys)) + in.InvOnC1.Bt(sys)
		}
	case AlgVVM:
		// Both inverted files travel once (the join site re-scans its
		// local copies on later passes).
		if net.C1Remote {
			pages += in.InvOnC1.I(sys)
		}
		if net.C2Remote {
			pages += in.InvOnC2.I(sys)
		}
	}
	_ = q
	return pages * net.CostPerPage
}

// EstimateTotal evaluates the extended model for one algorithm, using the
// sequential I/O variant as the I/O component.
func EstimateTotal(alg Algorithm, in Input, sys System, q Query, cpu CPUParams, net NetParams) Breakdown {
	b := Breakdown{Algorithm: alg}
	switch alg {
	case AlgHHNL:
		b.IO = HHNLSeq(in, sys, q)
		b.CPU = cpuCost(HHNLOps(in), cpu)
	case AlgHVNL:
		b.IO = HVNLSeq(in, sys, q)
		b.CPU = cpuCost(HVNLOps(in), cpu)
	case AlgVVM:
		b.IO = VVMSeq(in, sys, q)
		b.CPU = cpuCost(VVMOps(in), cpu)
	}
	b.Comm = commCost(alg, in, sys, q, net)
	return b
}

// EstimateAllTotal evaluates the extended model for all three algorithms.
func EstimateAllTotal(in Input, sys System, q Query, cpu CPUParams, net NetParams) []Breakdown {
	return []Breakdown{
		EstimateTotal(AlgHHNL, in, sys, q, cpu, net),
		EstimateTotal(AlgHVNL, in, sys, q, cpu, net),
		EstimateTotal(AlgVVM, in, sys, q, cpu, net),
	}
}

// ChooseTotal is the integrated algorithm under the extended model.
func ChooseTotal(in Input, sys System, q Query, cpu CPUParams, net NetParams) (Algorithm, []Breakdown) {
	bds := EstimateAllTotal(in, sys, q, cpu, net)
	best := bds[0]
	for _, b := range bds[1:] {
		if b.Total() < best.Total() {
			best = b
		}
	}
	return best.Algorithm, bds
}
