package costmodel

import (
	"math"
	"strings"
	"testing"
)

func TestSampleRatio(t *testing.T) {
	cases := []struct {
		est, meas, want float64
	}{
		{100, 100, 1},
		{100, 200, 2},
		{200, 100, 0.5},
		{0, 0, 1},
		{0, 5, math.Inf(1)},
	}
	for _, tc := range cases {
		s := Sample{Estimated: tc.est, Measured: tc.meas}
		if got := s.Ratio(); got != tc.want {
			t.Errorf("Ratio(%g, %g) = %g, want %g", tc.est, tc.meas, got, tc.want)
		}
	}
	if got := (Sample{Estimated: 100, Measured: 400}).Log2Err(); got != 2 {
		t.Errorf("Log2Err(100,400) = %g, want 2", got)
	}
}

func TestCalibrationHistogram(t *testing.T) {
	c := NewCalibration(nil)
	add := func(label string, a Algorithm, est, meas float64) {
		t.Helper()
		if err := c.Add(Sample{Label: label, Algorithm: a, Estimated: est, Measured: meas}); err != nil {
			t.Fatal(err)
		}
	}
	add("a", AlgHHNL, 100, 100) // ratio 1.0    → (0.95, 1.05]
	add("b", AlgHHNL, 100, 120) // ratio 1.2    → (1.05, 1.25]
	add("c", AlgHHNL, 100, 900) // ratio 9      → overflow
	add("d", AlgHVNL, 100, 50)  // ratio 0.5    → (0.25, 0.5]

	h := c.Histogram(AlgHHNL)
	if h.N != 3 {
		t.Fatalf("HHNL N = %d, want 3", h.N)
	}
	// Bounds: .25 .5 .8 .95 1.05 1.25 2 4 | +Inf
	want := []int64{0, 0, 0, 0, 1, 1, 0, 0, 1}
	for i, n := range h.Counts {
		if n != want[i] {
			t.Errorf("bucket %d: got %d, want %d", i, n, want[i])
		}
	}
	if h.Worst.Label != "c" {
		t.Errorf("worst sample %q, want c", h.Worst.Label)
	}
	wantMean := (0 + math.Abs(math.Log2(1.2)) + math.Log2(9)) / 3
	if math.Abs(h.MeanAbsLog2-wantMean) > 1e-12 {
		t.Errorf("MeanAbsLog2 = %g, want %g", h.MeanAbsLog2, wantMean)
	}
	if hv := c.Histogram(AlgHVNL); hv.N != 1 || hv.Counts[1] != 1 {
		t.Errorf("HVNL histogram wrong: %+v", hv)
	}
	if vv := c.Histogram(AlgVVM); vv.N != 0 {
		t.Errorf("VVM histogram should be empty, got N=%d", vv.N)
	}

	if err := c.Add(Sample{Estimated: -1, Measured: 1}); err == nil {
		t.Error("negative estimate accepted")
	}
	if err := c.Add(Sample{Estimated: math.NaN(), Measured: 1}); err == nil {
		t.Error("NaN estimate accepted")
	}
}

// TestMispicks pins the disagreement detector: a cell where the model
// ranks HVNL cheapest but the measurement ranks VVM cheapest is a
// mispick with the measured penalty of running HVNL anyway.
func TestMispicks(t *testing.T) {
	c := NewCalibration(nil)
	// Cell "agree": model and measurement both pick HHNL.
	c.Add(Sample{Label: "agree", Algorithm: AlgHHNL, Estimated: 10, Measured: 12})
	c.Add(Sample{Label: "agree", Algorithm: AlgHVNL, Estimated: 50, Measured: 60})
	c.Add(Sample{Label: "agree", Algorithm: AlgVVM, Estimated: 90, Measured: 80})
	// Cell "flip": model picks HVNL (40 < 50), measurement picks VVM.
	c.Add(Sample{Label: "flip", Algorithm: AlgHHNL, Estimated: 100, Measured: 90})
	c.Add(Sample{Label: "flip", Algorithm: AlgHVNL, Estimated: 40, Measured: 88})
	c.Add(Sample{Label: "flip", Algorithm: AlgVVM, Estimated: 50, Measured: 44})
	// Cell "single": one algorithm only — unrankable, skipped.
	c.Add(Sample{Label: "single", Algorithm: AlgVVM, Estimated: 5, Measured: 50})

	mis := c.Mispicks()
	if len(mis) != 1 {
		t.Fatalf("got %d mispicks, want 1: %+v", len(mis), mis)
	}
	m := mis[0]
	if m.Label != "flip" || m.EstimatedBest != AlgHVNL || m.MeasuredBest != AlgVVM {
		t.Errorf("mispick = %+v", m)
	}
	if want := 2.0; m.Penalty != want {
		t.Errorf("penalty = %g, want %g", m.Penalty, want)
	}
}

func TestWriteReport(t *testing.T) {
	c := NewCalibration(nil)
	c.Add(Sample{Label: "wsj-wsj", Algorithm: AlgHHNL, Estimated: 100, Measured: 130})
	c.Add(Sample{Label: "wsj-wsj", Algorithm: AlgHVNL, Estimated: 200, Measured: 90})
	c.Add(Sample{Label: "wsj-wsj", Algorithm: AlgVVM, Estimated: 50, Measured: 100})

	var sb strings.Builder
	if err := c.WriteReport(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"## HHNL", "## HVNL", "## VVM", "mispicks", "ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("report lacks %q:\n%s", want, out)
		}
	}
	// VVM was the estimated winner (50) but HVNL measures cheapest (90).
	if !strings.Contains(out, "estimated winner VVM, measured winner HVNL") {
		t.Errorf("report lacks the mispick line:\n%s", out)
	}
}
