package costmodel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOpsFormulas(t *testing.T) {
	in := Input{C1: wsj, C2: doe}
	hh := HHNLOps(in)
	hv := HVNLOps(in)
	vv := VVMOps(in)
	if hh <= 0 || hv <= 0 || vv <= 0 {
		t.Fatalf("ops: hh=%v hv=%v vv=%v", hh, hv, vv)
	}
	// HHNL compares every pair against full documents and must dwarf the
	// posting-based algorithms on full collections.
	if hh < 100*hv || hh < 100*vv {
		t.Errorf("HHNL ops %v should dwarf hv=%v vv=%v", hh, hv, vv)
	}
	// Exact structure check for HHNL.
	want := float64(wsj.N) * float64(doe.N) * (wsj.K + doe.K)
	if hh != want {
		t.Errorf("HHNLOps = %v, want %v", hh, want)
	}
}

func TestOpsDegenerate(t *testing.T) {
	if got := HVNLOps(Input{C1: Collection{}, C2: wsj}); got != 0 {
		t.Errorf("HVNLOps with empty C1 = %v", got)
	}
	if got := VVMOps(Input{C1: wsj, C2: Collection{}}); got != 0 {
		t.Errorf("VVMOps with empty C2 = %v", got)
	}
}

func TestZeroParamsReproduceIOOnly(t *testing.T) {
	in := Input{C1: wsj, C2: wsj}
	sys := baseSys()
	q := baseQ()
	for _, alg := range []Algorithm{AlgHHNL, AlgHVNL, AlgVVM} {
		b := EstimateTotal(alg, in, sys, q, CPUParams{}, NetParams{})
		if b.CPU != 0 || b.Comm != 0 {
			t.Errorf("%v: cpu=%v comm=%v with zero params", alg, b.CPU, b.Comm)
		}
		var wantIO float64
		switch alg {
		case AlgHHNL:
			wantIO = HHNLSeq(in, sys, q)
		case AlgHVNL:
			wantIO = HVNLSeq(in, sys, q)
		case AlgVVM:
			wantIO = VVMSeq(in, sys, q)
		}
		if b.IO != wantIO || b.Total() != wantIO {
			t.Errorf("%v: io=%v total=%v, want %v", alg, b.IO, b.Total(), wantIO)
		}
	}
	// ChooseTotal with zero params equals the paper's Choose.
	algA, _ := Choose(in, sys, q)
	algB, _ := ChooseTotal(in, sys, q, CPUParams{}, NetParams{})
	if algA != algB {
		t.Errorf("ChooseTotal = %v, Choose = %v", algB, algA)
	}
}

func TestCPUCostFlipsTheChoice(t *testing.T) {
	// DOE self join at base parameters: HHNL wins on I/O alone, but its
	// N1·N2·(K1+K2) CPU term is orders of magnitude above the others,
	// so a slow-CPU configuration flips the choice away from HHNL.
	in := Input{C1: doe, C2: doe}
	sys := baseSys()
	q := baseQ()
	ioOnly, _ := Choose(in, sys, q)
	if ioOnly != AlgHHNL {
		t.Fatalf("precondition: I/O-only choice = %v, want HHNL", ioOnly)
	}
	slow := CPUParams{OpsPerPageRead: 1000} // very slow CPU relative to I/O
	withCPU, bds := ChooseTotal(in, sys, q, slow, NetParams{})
	if withCPU == AlgHHNL {
		t.Errorf("CPU-aware choice still HHNL: %+v", bds)
	}
}

func TestCommCostStructure(t *testing.T) {
	in := Input{C1: wsj, C2: doe}
	sys := baseSys()
	q := baseQ()
	net := NetParams{CostPerPage: 2, C1Remote: true, C2Remote: true}

	hh := EstimateTotal(AlgHHNL, in, sys, q, CPUParams{}, net)
	wantHH := (wsj.D(sys) + doe.D(sys)) * 2
	if math.Abs(hh.Comm-wantHH) > 1e-6 {
		t.Errorf("HHNL comm = %v, want %v", hh.Comm, wantHH)
	}

	vv := EstimateTotal(AlgVVM, in, sys, q, CPUParams{}, net)
	wantVV := (wsj.I(sys) + doe.I(sys)) * 2
	if math.Abs(vv.Comm-wantVV) > 1e-6 {
		t.Errorf("VVM comm = %v, want %v", vv.Comm, wantVV)
	}

	// HVNL ships only the needed C1 entries, which is capped by the full
	// inverted file.
	hv := EstimateTotal(AlgHVNL, in, sys, q, CPUParams{}, net)
	maxHV := (doe.D(sys) + wsj.I(sys) + wsj.Bt(sys)) * 2
	if hv.Comm <= 0 || hv.Comm > maxHV+1e-6 {
		t.Errorf("HVNL comm = %v, want in (0, %v]", hv.Comm, maxHV)
	}

	// Only-one-site-remote charges less.
	half := EstimateTotal(AlgHHNL, in, sys, q, CPUParams{}, NetParams{CostPerPage: 2, C1Remote: true})
	if half.Comm >= hh.Comm {
		t.Errorf("one-remote comm %v >= both-remote %v", half.Comm, hh.Comm)
	}
}

func TestCommCostFavorsHVNLWithRemoteC1(t *testing.T) {
	// A small selected C2 joined against a remote C1: HVNL ships only
	// the needed entries while HHNL must ship the whole collection, so
	// expensive links push the choice to HVNL even more strongly. FR's
	// large K makes the HVNL window narrow, so use a very small m.
	m := int64(5)
	sub := Collection{N: m, K: fr.K, T: int64(hvnlGrowth(fr, float64(m)))}
	in := Input{C1: fr, C2: sub, InvOnC1: fr, InvOnC2: fr, C2Random: true}
	sys := baseSys()
	q := baseQ()
	net := NetParams{CostPerPage: 10, C1Remote: true}
	alg, bds := ChooseTotal(in, sys, q, CPUParams{}, net)
	if alg != AlgHVNL {
		t.Errorf("choice = %v, want HVNL (%+v)", alg, bds)
	}
}

// Property: totals decompose exactly and are monotone in both knob
// settings.
func TestQuickExtendedMonotone(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := Input{C1: randomCollection(r), C2: randomCollection(r)}
		sys := System{B: int64(r.Intn(50000) + 100), P: 4096, Alpha: 5}
		q := baseQ()
		cpuLo := CPUParams{OpsPerPageRead: 1e9}
		cpuHi := CPUParams{OpsPerPageRead: 1e4}
		netLo := NetParams{CostPerPage: 0.1, C1Remote: true, C2Remote: true}
		netHi := NetParams{CostPerPage: 10, C1Remote: true, C2Remote: true}
		for _, alg := range []Algorithm{AlgHHNL, AlgHVNL, AlgVVM} {
			lo := EstimateTotal(alg, in, sys, q, cpuLo, netLo)
			hi := EstimateTotal(alg, in, sys, q, cpuHi, netHi)
			if math.IsInf(lo.IO, 1) {
				continue
			}
			if lo.Total() != lo.IO+lo.CPU+lo.Comm {
				return false
			}
			if hi.CPU < lo.CPU || hi.Comm < lo.Comm {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
