// Package costmodel implements every I/O cost formula of the paper's
// Section 5, the overlap-probability model of Section 6, and the
// integrated algorithm-selection rule of Sections 6–7.
//
// The package is pure arithmetic with no dependencies: it reasons about a
// join "C1 SIMILAR_TO(λ) C2" solely through collection statistics
// (N, K, T), system parameters (B, P, α) and query parameters (λ, δ, q),
// exactly as the paper's simulation does. Costs are expressed in
// sequential-page-read units; a random page read costs α units.
//
// Sequential-variant formulas (hhs, hvs, vvs) model each collection being
// "read by a dedicated drive with no or little interference"; the random
// variants (hhr, hvr, vvr) model the worst case where the I/O devices are
// busy with other obligations.
package costmodel

import (
	"fmt"
	"math"
)

// Storage constants fixed by the paper.
const (
	// CellBytes is the size of a d-cell or i-cell: |t#| + |w| = 3 + 2.
	CellBytes = 5
	// BTreeCellBytes is the size of a B+tree leaf cell: 3 + 4 + 2.
	BTreeCellBytes = 9
	// SimBytes is the memory taken by one intermediate similarity value.
	SimBytes = 4
	// TermNumBytes is |t#|, charged per entry in HVNL's resident term
	// list.
	TermNumBytes = 3
)

// Infeasible is the cost reported when an algorithm cannot run within the
// memory budget.
var Infeasible = math.Inf(1)

// Collection carries the statistics of one document collection.
type Collection struct {
	// N is the number of documents.
	N int64
	// K is the average number of terms per document.
	K float64
	// T is the number of distinct terms.
	T int64
}

// System carries the system parameters.
type System struct {
	// B is the memory buffer size in pages.
	B int64
	// P is the page size in bytes.
	P int64
	// Alpha is the cost ratio of a random over a sequential page read.
	Alpha float64
}

// DefaultSystem returns the paper's base values: B = 10000 pages of 4 KB,
// α = 5.
func DefaultSystem() System { return System{B: 10000, P: 4096, Alpha: 5} }

// Query carries the query parameters.
type Query struct {
	// Lambda is λ of SIMILAR_TO(λ).
	Lambda int64
	// Delta is δ, the fraction of non-zero similarities.
	Delta float64
}

// DefaultQuery returns the paper's base values: λ = 20, δ = 0.1.
func DefaultQuery() Query { return Query{Lambda: 20, Delta: 0.1} }

// Derived collection quantities (Section 3's notation).

// S returns the average document size in pages: 5·K/P.
func (c Collection) S(sys System) float64 { return CellBytes * c.K / float64(sys.P) }

// D returns the collection size in pages: S·N.
func (c Collection) D(sys System) float64 { return c.S(sys) * float64(c.N) }

// J returns the average inverted file entry size in pages:
// 5·(K·N)/(T·P).
func (c Collection) J(sys System) float64 {
	if c.T == 0 {
		return 0
	}
	return CellBytes * c.K * float64(c.N) / (float64(c.T) * float64(sys.P))
}

// I returns the inverted file size in pages: J·T (equal to D).
func (c Collection) I(sys System) float64 { return c.J(sys) * float64(c.T) }

// Bt returns the B+tree size in pages: 9·T/P.
func (c Collection) Bt(sys System) float64 {
	return BTreeCellBytes * float64(c.T) / float64(sys.P)
}

// Overlap implements the simulation's overlap-probability formula. It
// returns the probability that a term of a collection with tFrom distinct
// terms also appears in a collection with tTo distinct terms:
//
//	0.8·tTo/tFrom   if tTo ≤ tFrom
//	0.8             if tFrom < tTo < 5·tFrom
//	1 − tFrom/tTo   if tTo ≥ 5·tFrom
//
// The paper's q (term of C2 appears in C1) is Overlap(T1, T2) and p is
// Overlap(T2, T1).
func Overlap(tTo, tFrom int64) float64 {
	if tTo <= 0 || tFrom <= 0 {
		return 0
	}
	switch {
	case tTo <= tFrom:
		return 0.8 * float64(tTo) / float64(tFrom)
	case tTo < 5*tFrom:
		return 0.8
	default:
		return 1 - float64(tFrom)/float64(tTo)
	}
}

// Input describes one join for cost estimation. C2 describes the
// documents actually participating in the join (after selections), while
// InvOnC1/InvOnC2 describe the collections whose inverted files and
// B+trees exist on disk — for an originally large C2 reduced by a
// selection these stay at the original statistics, the paper's Group 3
// point that "the size of the file remains the same even if the number of
// documents ... can be reduced by a selection".
type Input struct {
	C1 Collection
	C2 Collection
	// Q is the probability that a term in C2 also appears in C1. Zero
	// means "derive from the simulation formula".
	Q float64
	// InvOnC1 and InvOnC2 default to C1 and C2 when zero.
	InvOnC1 Collection
	InvOnC2 Collection
	// C2Random marks that C2's participating documents must be read
	// with random I/O (a selection over an originally large collection).
	C2Random bool
}

// normalize fills defaults.
func (in Input) normalize() Input {
	if in.InvOnC1 == (Collection{}) {
		in.InvOnC1 = in.C1
	}
	if in.InvOnC2 == (Collection{}) {
		in.InvOnC2 = in.C2
	}
	if in.Q == 0 {
		in.Q = Overlap(in.InvOnC1.T, in.C2.T)
	}
	return in
}

// c2ReadCost returns the cost of bringing every participating C2 document
// into memory once: a sequential scan of D2 pages, or N2 random reads of
// ⌈S2⌉ pages each.
func (in Input) c2ReadCost(sys System) float64 {
	if in.C2Random {
		return float64(in.C2.N) * math.Ceil(in.C2.S(sys)) * sys.Alpha
	}
	return in.C2.D(sys)
}

// ---- HHNL (Section 5.1) ----

// HHNLBatch returns the paper's X: the number of C2 documents held per
// batch, X = (B − ⌈S1⌉)/(S2 + 4λ/P), clamped at 1 when positive memory
// remains (the running algorithm degrades to one document at a time).
// It returns 0 when even that is impossible.
func HHNLBatch(in Input, sys System, q Query) float64 {
	in = in.normalize()
	avail := float64(sys.B) - math.Ceil(in.C1.S(sys))
	if avail <= 0 {
		return 0
	}
	per := in.C2.S(sys) + float64(SimBytes)*float64(q.Lambda)/float64(sys.P)
	if per <= 0 {
		return 0
	}
	x := avail / per
	if x < 1 {
		if avail >= per { // unreachable, defensive
			return 1
		}
		// One document at a time still needs the document to fit.
		if float64(sys.B) >= math.Ceil(in.C1.S(sys))+math.Ceil(in.C2.S(sys)) {
			return 1
		}
		return 0
	}
	return x
}

// HHNLSeq returns hhs = cost(C2) + ⌈N2/X⌉·D1, the all-sequential HHNL
// cost.
func HHNLSeq(in Input, sys System, q Query) float64 {
	in = in.normalize()
	x := HHNLBatch(in, sys, q)
	if x <= 0 {
		return Infeasible
	}
	scans := math.Ceil(float64(in.C2.N) / x)
	if in.C2.N == 0 {
		scans = 0
	}
	return in.c2ReadCost(sys) + scans*in.C1.D(sys)
}

// HHNLRand returns hhr, the worst-case HHNL cost with contended devices:
//
//	N2 ≥ X: hhs + ⌈N2/X⌉·(1 + min{D1, N1})·(α−1)
//	N2 < X: hhs + ⌈D1/((X−N2)·S2)⌉·(α−1)
func HHNLRand(in Input, sys System, q Query) float64 {
	in = in.normalize()
	hhs := HHNLSeq(in, sys, q)
	if math.IsInf(hhs, 1) {
		return Infeasible
	}
	x := HHNLBatch(in, sys, q)
	n2 := float64(in.C2.N)
	if n2 >= x {
		randomsPerScan := 1 + math.Min(in.C1.D(sys), float64(in.C1.N))
		return hhs + math.Ceil(n2/x)*randomsPerScan*(sys.Alpha-1)
	}
	spare := (x - n2) * in.C2.S(sys)
	if spare <= 0 {
		return hhs + in.C1.D(sys)*(sys.Alpha-1)
	}
	return hhs + math.Ceil(in.C1.D(sys)/spare)*(sys.Alpha-1)
}

// HHNLBackwardBatch returns X for HHNL's backward order (C1 outer): the
// number of inner documents held per batch when memory also carries one
// C2 document and a λ-tracker for every C2 document:
//
//	X = (B − ⌈S2⌉ − 4·λ·N2/P) / S1
//
// The paper mentions the backward order ("can be more efficient if C1 is
// much smaller than C2") and defers it to the technical report; this is
// the symmetric derivation under the same memory policy.
func HHNLBackwardBatch(in Input, sys System, q Query) float64 {
	in = in.normalize()
	trackerPages := float64(SimBytes) * float64(q.Lambda) * float64(in.C2.N) / float64(sys.P)
	avail := float64(sys.B) - math.Ceil(in.C2.S(sys)) - trackerPages
	if avail <= 0 {
		return 0
	}
	per := in.C1.S(sys)
	if per <= 0 {
		return 0
	}
	x := avail / per
	if x < 1 {
		if float64(sys.B) >= math.Ceil(in.C1.S(sys))+math.Ceil(in.C2.S(sys))+trackerPages {
			return 1
		}
		return 0
	}
	return x
}

// HHNLBackwardSeq returns the all-sequential cost of backward HHNL:
// scan C1 once, re-scan C2 once per C1 batch.
func HHNLBackwardSeq(in Input, sys System, q Query) float64 {
	in = in.normalize()
	x := HHNLBackwardBatch(in, sys, q)
	if x <= 0 {
		return Infeasible
	}
	scans := math.Ceil(float64(in.C1.N) / x)
	if in.C1.N == 0 {
		scans = 0
	}
	return in.C1.D(sys) + scans*in.c2ReadCost(sys)
}

// HHNLBackwardRand mirrors hhr for the backward order.
func HHNLBackwardRand(in Input, sys System, q Query) float64 {
	in = in.normalize()
	seq := HHNLBackwardSeq(in, sys, q)
	if math.IsInf(seq, 1) {
		return Infeasible
	}
	x := HHNLBackwardBatch(in, sys, q)
	n1 := float64(in.C1.N)
	if n1 >= x {
		randomsPerScan := 1 + math.Min(in.C2.D(sys), float64(in.C2.N))
		return seq + math.Ceil(n1/x)*randomsPerScan*(sys.Alpha-1)
	}
	spare := (x - n1) * in.C1.S(sys)
	if spare <= 0 {
		return seq + in.C2.D(sys)*(sys.Alpha-1)
	}
	return seq + math.Ceil(in.C2.D(sys)/spare)*(sys.Alpha-1)
}

// ---- HVNL (Section 5.2) ----

// HVNLBufferEntries returns the paper's X for HVNL: the number of inverted
// file entries on C1 that fit in memory alongside one C2 document, the
// B+tree on C1 and the non-zero similarity accumulators:
//
//	X = ⌊(B − ⌈S2⌉ − Bt1 − 4·N1·δ/P) / (J1 + |t#|/P)⌋
func HVNLBufferEntries(in Input, sys System, q Query) float64 {
	in = in.normalize()
	avail := float64(sys.B) - math.Ceil(in.C2.S(sys)) - in.InvOnC1.Bt(sys) -
		float64(SimBytes)*float64(in.C1.N)*q.Delta/float64(sys.P)
	if avail <= 0 {
		return 0
	}
	per := in.InvOnC1.J(sys) + float64(TermNumBytes)/float64(sys.P)
	if per <= 0 {
		return 0
	}
	return math.Floor(avail / per)
}

// hvnlNeeded returns the expected number of inverted file entries on C1
// the whole join ever reads: q·f(N2), the distinct terms appearing in
// C2's participating documents that also occur in C1. The paper writes
// T2·q in its first two regimes; the two coincide for full-size
// collections (f(N2) → T2) while q·f(N2) stays consistent with the
// third regime's growth model for small N2, keeping hvs monotone in B.
func hvnlNeeded(in Input) float64 {
	return in.Q * hvnlGrowth(in.C2, float64(in.C2.N))
}

// hvnlGrowth is f(m) = T2 − (1 − K2/T2)^m · T2, the expected number of
// distinct terms in m documents of C2.
func hvnlGrowth(c2 Collection, m float64) float64 {
	t2 := float64(c2.T)
	if t2 <= 0 || m <= 0 {
		return 0
	}
	frac := 1 - c2.K/t2
	if frac < 0 {
		frac = 0
	}
	return t2 - math.Pow(frac, m)*t2
}

// HVNLSeq returns hvs, the HVNL cost with sequential C2 reads, in the
// paper's three memory regimes.
func HVNLSeq(in Input, sys System, q Query) float64 {
	in = in.normalize()
	x := HVNLBufferEntries(in, sys, q)
	if x <= 0 {
		return Infeasible
	}
	d2 := in.c2ReadCost(sys)
	bt1 := in.InvOnC1.Bt(sys)
	j1 := math.Ceil(in.InvOnC1.J(sys))
	t1 := float64(in.InvOnC1.T)
	needed := hvnlNeeded(in)

	switch {
	case x >= t1:
		// All entries fit: read the whole inverted file sequentially, or
		// only the needed entries randomly, whichever is cheaper.
		seqAll := d2 + in.InvOnC1.I(sys) + bt1
		randNeeded := d2 + needed*j1*sys.Alpha + bt1
		return math.Min(seqAll, randNeeded)
	case x >= needed:
		// All needed entries fit: each is read once, randomly.
		return d2 + needed*j1*sys.Alpha + bt1
	default:
		// Memory fills after the first s + X1 − 1 documents; each later
		// document forces Y new entry reads. The fill term is capped at
		// the entries ever needed: beyond that the formula's
		// X-proportional term would charge reads that never happen.
		s, x1 := hvnlFillPoint(in, x)
		y := q1Clamp(in.Q*hvnlGrowth(in.C2, s+x1) - x)
		remaining := float64(in.C2.N) - s - x1 + 1
		if remaining < 0 {
			remaining = 0
		}
		return d2 + math.Min(x, needed)*j1*sys.Alpha + bt1 + remaining*y*j1*sys.Alpha
	}
}

func q1Clamp(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}

// hvnlFillPoint returns (s, X1): s is the smallest document count m with
// q·f(m) > X, and X1 the fraction of the s-th document's new entries that
// still fit.
func hvnlFillPoint(in Input, x float64) (float64, float64) {
	s := 1.0
	// Closed form: q·T2·(1 − r^m) > X  ⇔  r^m < 1 − X/(q·T2).
	t2, k2 := float64(in.C2.T), in.C2.K
	r := 1 - k2/t2
	if r <= 0 {
		// Each document contains the whole vocabulary; memory fills
		// within the first document.
		return 1, 1
	}
	target := 1 - x/(in.Q*t2)
	if target <= 0 {
		// q·f(m) never exceeds X: the caller's regime check prevents
		// this, but stay defensive.
		return float64(in.C2.N), 1
	}
	s = math.Ceil(math.Log(target) / math.Log(r))
	if s < 1 {
		s = 1
	}
	fPrev := in.Q * hvnlGrowth(in.C2, s-1)
	fS := in.Q * hvnlGrowth(in.C2, s)
	if fS <= fPrev {
		return s, 1
	}
	x1 := (x - fPrev) / (fS - fPrev)
	if x1 < 0 {
		x1 = 0
	}
	if x1 > 1 {
		x1 = 1
	}
	return s, x1
}

// HVNLRand returns hvr, HVNL's worst-case cost when C2's reads contend
// with the inverted file's random reads.
func HVNLRand(in Input, sys System, q Query) float64 {
	in = in.normalize()
	x := HVNLBufferEntries(in, sys, q)
	if x <= 0 {
		return Infeasible
	}
	hvs := HVNLSeq(in, sys, q)
	if in.C2Random {
		// C2 is already charged at random rates; the (α−1) surcharges
		// below only convert sequential C2 reads.
		return hvs
	}
	d2 := in.C2.D(sys)
	bt1 := in.InvOnC1.Bt(sys)
	j1raw := in.InvOnC1.J(sys)
	j1 := math.Ceil(j1raw)
	t1 := float64(in.InvOnC1.T)
	needed := hvnlNeeded(in)

	switch {
	case x >= t1:
		a := d2 + in.InvOnC1.I(sys) + bt1 + blockSurcharge(d2, (x-t1)*j1raw, sys)
		b := d2 + needed*j1*sys.Alpha + bt1 + blockSurcharge(d2, (x-needed)*j1raw, sys)
		return math.Min(a, b)
	case x >= needed:
		return hvs + blockSurcharge(d2, (x-needed)*j1raw, sys)
	default:
		return hvs + math.Min(d2, float64(in.C2.N))*(sys.Alpha-1)
	}
}

// blockSurcharge converts the sequential scan of d2 pages into blocks that
// fit in spare pages, charging (α−1) for the seek starting each block.
func blockSurcharge(d2, sparePages float64, sys System) float64 {
	if sparePages <= 0 {
		return d2 * (sys.Alpha - 1)
	}
	return math.Ceil(d2/sparePages) * (sys.Alpha - 1)
}

// ---- VVM (Section 5.3) ----

// VVMPartitions returns ⌈SM/M⌉: the number of passes VVM needs, where
// SM = 4·δ·N1·N2/P pages of intermediate similarities and
// M = B − ⌈J1⌉ − ⌈J2⌉ pages of memory. It returns 0 when M ≤ 0.
func VVMPartitions(in Input, sys System, q Query) float64 {
	in = in.normalize()
	m := float64(sys.B) - math.Ceil(in.InvOnC1.J(sys)) - math.Ceil(in.InvOnC2.J(sys))
	if m <= 0 {
		return 0
	}
	sm := float64(SimBytes) * q.Delta * float64(in.C1.N) * float64(in.C2.N) / float64(sys.P)
	parts := math.Ceil(sm / m)
	if parts < 1 {
		parts = 1
	}
	return parts
}

// VVMSeq returns vvs = (I1 + I2)·⌈SM/M⌉.
func VVMSeq(in Input, sys System, q Query) float64 {
	in = in.normalize()
	parts := VVMPartitions(in, sys, q)
	if parts == 0 {
		return Infeasible
	}
	return (in.InvOnC1.I(sys) + in.InvOnC2.I(sys)) * parts
}

// VVMRand returns vvr = (min{I1,T1} + min{I2,T2})·α·⌈SM/M⌉.
func VVMRand(in Input, sys System, q Query) float64 {
	in = in.normalize()
	parts := VVMPartitions(in, sys, q)
	if parts == 0 {
		return Infeasible
	}
	r1 := math.Min(in.InvOnC1.I(sys), float64(in.InvOnC1.T))
	r2 := math.Min(in.InvOnC2.I(sys), float64(in.InvOnC2.T))
	return (r1 + r2) * sys.Alpha * parts
}

// ---- Integrated selection (Sections 6–7) ----

// Algorithm mirrors core's algorithm identifiers without importing it.
type Algorithm int

// The three algorithms, in the paper's order, plus the approximate
// MinHash/banding join (an extension beyond the paper).
const (
	AlgHHNL Algorithm = iota
	AlgHVNL
	AlgVVM
	AlgLSH
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case AlgHHNL:
		return "HHNL"
	case AlgHVNL:
		return "HVNL"
	case AlgVVM:
		return "VVM"
	case AlgLSH:
		return "LSH"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Estimate is the estimated cost of one algorithm on one input.
type Estimate struct {
	Algorithm Algorithm
	// Seq is the all-sequential cost (hhs/hvs/vvs).
	Seq float64
	// Rand is the worst-case cost (hhr/hvr/vvr).
	Rand float64
	// Prefiltered marks a signature-prefiltered plan variant (see
	// EstimateAllPrefilter).
	Prefiltered bool
	// Recall is the estimated recall of an approximate plan. Only
	// meaningful when Algorithm is AlgLSH (see EstimateLSH); the exact
	// algorithms leave it zero — their recall is 1 by construction and
	// the planner treats it so.
	Recall float64
}

// EstimateAll evaluates all six formulas.
func EstimateAll(in Input, sys System, q Query) []Estimate {
	return []Estimate{
		{Algorithm: AlgHHNL, Seq: HHNLSeq(in, sys, q), Rand: HHNLRand(in, sys, q)},
		{Algorithm: AlgHVNL, Seq: HVNLSeq(in, sys, q), Rand: HVNLRand(in, sys, q)},
		{Algorithm: AlgVVM, Seq: VVMSeq(in, sys, q), Rand: VVMRand(in, sys, q)},
	}
}

// Choose implements the integrated algorithm: return the basic algorithm
// with the lowest estimated (sequential) cost, with ties broken in the
// paper's presentation order HHNL, HVNL, VVM. The estimates are returned
// for explanation.
func Choose(in Input, sys System, q Query) (Algorithm, []Estimate) {
	ests := EstimateAll(in, sys, q)
	best := ests[0]
	for _, e := range ests[1:] {
		if e.Seq < best.Seq {
			best = e
		}
	}
	return best.Algorithm, ests
}
