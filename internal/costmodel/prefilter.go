package costmodel

import "math"

// Prefilter carries the measured pruning power of signature sidecars,
// feeding the prefiltered plan estimates. The skip fractions and run
// counts are measured against the sidecars at plan time (the signatures
// are memory-resident, so measuring is CPU-only); the planner then
// weighs the saved page reads against the one-time sidecar load and the
// seek surcharge of a gappy scan.
type Prefilter struct {
	// SidecarPages is the one-time sequential cost of loading the
	// sidecar file(s).
	SidecarPages float64
	// PageSkip is the fraction of C1 data pages an HHNL inner scan
	// skips under the query signature.
	PageSkip float64
	// ScanRuns is the number of retained contiguous page runs per
	// filtered inner scan: resuming after each gap costs one random
	// read.
	ScanRuns float64
	// DocSkip is the fraction of C2 documents HVNL never probes (their
	// signatures are disjoint from C1's root aggregate).
	DocSkip float64
	// OuterRuns is the number of retained runs of HVNL's filtered outer
	// sweep.
	OuterRuns float64
}

// filteredScanCost prices one sequential sweep of `pages` pages when a
// skipFrac fraction is never read and the kept pages form `runs`
// contiguous runs, each resuming with one random read.
func filteredScanCost(pages, skipFrac, runs float64, sys System) float64 {
	kept := pages * (1 - skipFrac)
	if kept <= 0 {
		return 0
	}
	cost := kept + runs*(sys.Alpha-1)
	// Pruning can only remove reads; a gap-heavy layout must never be
	// priced above the plain sweep it replaces.
	return math.Min(cost, pages)
}

// HHNLPrefilterSeq is hhs with the inner scans priced under the page
// skip fraction, plus the sidecar load.
func HHNLPrefilterSeq(in Input, sys System, q Query, pf Prefilter) float64 {
	in = in.normalize()
	x := HHNLBatch(in, sys, q)
	if x <= 0 {
		return Infeasible
	}
	scans := math.Ceil(float64(in.C2.N) / x)
	if in.C2.N == 0 {
		scans = 0
	}
	inner := filteredScanCost(in.C1.D(sys), pf.PageSkip, pf.ScanRuns, sys)
	return in.c2ReadCost(sys) + scans*inner + pf.SidecarPages
}

// HHNLPrefilterRand is hhr under the prefilter: the same contention
// surcharge as HHNLRand on top of the prefiltered sequential cost.
func HHNLPrefilterRand(in Input, sys System, q Query, pf Prefilter) float64 {
	seq := HHNLPrefilterSeq(in, sys, q, pf)
	if math.IsInf(seq, 1) {
		return Infeasible
	}
	return seq + (HHNLRand(in, sys, q) - HHNLSeq(in, sys, q))
}

// hvnlPrefilterScale shrinks C2 to the unskipped fraction: a skipped
// document is neither read nor probed.
func hvnlPrefilterScale(in Input, pf Prefilter) Input {
	scaled := in
	scaled.C2.N = int64(math.Round((1 - pf.DocSkip) * float64(in.C2.N)))
	return scaled
}

// HVNLPrefilterSeq is hvs over the unskipped outer documents, plus the
// outer sweep's run resumptions and the sidecar load.
func HVNLPrefilterSeq(in Input, sys System, q Query, pf Prefilter) float64 {
	in = in.normalize()
	base := HVNLSeq(hvnlPrefilterScale(in, pf), sys, q)
	if math.IsInf(base, 1) {
		return Infeasible
	}
	return base + pf.OuterRuns*(sys.Alpha-1) + pf.SidecarPages
}

// HVNLPrefilterRand is hvr under the prefilter.
func HVNLPrefilterRand(in Input, sys System, q Query, pf Prefilter) float64 {
	in = in.normalize()
	base := HVNLRand(hvnlPrefilterScale(in, pf), sys, q)
	if math.IsInf(base, 1) {
		return Infeasible
	}
	return base + pf.OuterRuns*(sys.Alpha-1) + pf.SidecarPages
}

// EstimateAllPrefilter evaluates the prefiltered plan variants (VVM's
// merge already touches only co-occurring terms, so it has none).
func EstimateAllPrefilter(in Input, sys System, q Query, pf Prefilter) []Estimate {
	return []Estimate{
		{Algorithm: AlgHHNL, Seq: HHNLPrefilterSeq(in, sys, q, pf), Rand: HHNLPrefilterRand(in, sys, q, pf), Prefiltered: true},
		{Algorithm: AlgHVNL, Seq: HVNLPrefilterSeq(in, sys, q, pf), Rand: HVNLPrefilterRand(in, sys, q, pf), Prefiltered: true},
	}
}
