package slo

import (
	"math"
	"strings"
	"testing"
	"time"

	"textjoin/internal/metrics"
	"textjoin/internal/telemetry"
)

// clock is a settable fake time source shared by the collector and the
// engine, as the wallclock lint demands.
type clock struct{ t time.Time }

func newClock() *clock                   { return &clock{t: time.Unix(1700000000, 0)} }
func (c *clock) now() time.Time          { return c.t }
func (c *clock) advance(d time.Duration) { c.t = c.t.Add(d) }

func availObjective() Objective {
	return Objective{
		Name:   "availability",
		Target: 0.99,
		Good:   []string{"http.join.ok"},
		Bad:    []string{"http.join.err", "http.rejected"},
	}
}

func latencyObjective() Objective {
	return Objective{
		Name:           "latency",
		Target:         0.95,
		Histogram:      "http.request.join.ns",
		ThresholdNanos: 1 << 20, // ~1ms, a power-of-4 bucket boundary multiple
	}
}

func mustEngine(t *testing.T, col *telemetry.Collector, ck *clock, window time.Duration, obj ...Objective) *Engine {
	t.Helper()
	e, err := New(col, ck.now, window, obj)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestObjectiveValidation(t *testing.T) {
	bad := []Objective{
		{},
		{Name: "x", Target: 0},
		{Name: "x", Target: 1},
		{Name: "x", Target: 0.9}, // neither shape
		{Name: "x", Target: 0.9, Histogram: "h", Good: []string{"c"}}, // both shapes
		{Name: "x", Target: 0.9, Histogram: "h"},                      // no threshold
	}
	ck := newClock()
	for i, o := range bad {
		if _, err := New(nil, ck.now, time.Minute, []Objective{o}); err == nil {
			t.Errorf("case %d: invalid objective accepted: %+v", i, o)
		}
	}
}

func TestAvailabilityWindow(t *testing.T) {
	ck := newClock()
	col := telemetry.New(telemetry.WithClock(ck.now))
	e := mustEngine(t, col, ck, time.Minute, availObjective())

	// No traffic: perfect compliance, full budget.
	ck.advance(time.Second)
	st := e.Collect()[0]
	if st.Compliance != 1 || st.BudgetRemaining != 1 || st.BurnRate != 0 {
		t.Fatalf("idle status: %+v", st)
	}

	// 98 good, 2 bad: 2%% bad against a 1%% allowance → burn 2, budget -1.
	col.Counter("http.join.ok").Add(98)
	col.Counter("http.join.err").Add(1)
	col.Counter("http.rejected").Add(1)
	ck.advance(time.Second)
	st = e.Collect()[0]
	if st.Good != 98 || st.Bad != 2 {
		t.Fatalf("counts: %+v", st)
	}
	if math.Abs(st.Compliance-0.98) > 1e-9 {
		t.Fatalf("compliance = %v", st.Compliance)
	}
	if math.Abs(st.BurnRate-2.0) > 1e-9 || math.Abs(st.BudgetRemaining-(-1.0)) > 1e-9 {
		t.Fatalf("burn %v, remaining %v", st.BurnRate, st.BudgetRemaining)
	}

	// Once the bad burst slides out of the window and only good traffic
	// remains, the budget recovers.
	for i := 0; i < 10; i++ {
		ck.advance(20 * time.Second)
		col.Counter("http.join.ok").Add(50)
		st = e.Collect()[0]
	}
	if st.Bad != 0 || st.BudgetRemaining != 1 {
		t.Fatalf("window did not slide: %+v", st)
	}
	if st.WindowSeconds > 61 {
		t.Fatalf("window spans %v s, want <= 60", st.WindowSeconds)
	}
}

func TestLatencyObjective(t *testing.T) {
	ck := newClock()
	col := telemetry.New(telemetry.WithClock(ck.now))
	e := mustEngine(t, col, ck, time.Minute, latencyObjective())

	h := col.Histogram("http.request.join.ns", telemetry.DefaultLatencyBuckets)
	// 19 fast (well under 1ms), 1 slow (over): 95% compliance exactly.
	for i := 0; i < 19; i++ {
		h.Observe(2000)
	}
	h.Observe(int64(50 * time.Millisecond))
	ck.advance(time.Second)
	st := e.Collect()[0]
	if st.Good != 19 || st.Bad != 1 {
		t.Fatalf("latency counts: %+v", st)
	}
	if math.Abs(st.Compliance-0.95) > 1e-9 {
		t.Fatalf("compliance = %v", st.Compliance)
	}
	if math.Abs(st.BurnRate-1.0) > 1e-9 || math.Abs(st.BudgetRemaining) > 1e-9 {
		t.Fatalf("at exactly the SLO boundary: burn %v, remaining %v", st.BurnRate, st.BudgetRemaining)
	}
}

func TestEngineMeasuresFromCreation(t *testing.T) {
	ck := newClock()
	col := telemetry.New(telemetry.WithClock(ck.now))
	// Pre-existing failures before the engine attaches must not count.
	col.Counter("http.join.err").Add(1000)
	e := mustEngine(t, col, ck, time.Minute, availObjective())
	col.Counter("http.join.ok").Add(10)
	ck.advance(time.Second)
	st := e.Collect()[0]
	if st.Bad != 0 || st.Good != 10 {
		t.Fatalf("engine counted pre-attach traffic: %+v", st)
	}
}

func TestGaugesRenderAndLint(t *testing.T) {
	ck := newClock()
	col := telemetry.New(telemetry.WithClock(ck.now))
	e := mustEngine(t, col, ck, time.Minute, availObjective(), latencyObjective())
	col.Counter("http.join.ok").Add(5)
	ck.advance(time.Second)

	gauges := e.Gauges()
	if len(gauges) != 10 {
		t.Fatalf("gauges = %d, want 5 per objective", len(gauges))
	}
	seen := map[string]bool{}
	for _, g := range gauges {
		if !strings.HasPrefix(g.Family, "textjoin_slo_") {
			t.Errorf("family %q lacks the slo namespace", g.Family)
		}
		if g.LabelKey != "objective" || g.LabelValue == "" {
			t.Errorf("gauge %q lacks the objective label: %+v", g.Family, g)
		}
		seen[g.Family] = true
	}
	for _, want := range []string{
		"textjoin_slo_target", "textjoin_slo_compliance",
		"textjoin_slo_error_budget_remaining", "textjoin_slo_burn_rate",
		"textjoin_slo_window_seconds",
	} {
		if !seen[want] {
			t.Errorf("missing family %s", want)
		}
	}

	// The full exposition with the SLO gauges injected passes the strict
	// linter — the acceptance criterion for textjoin_slo_*.
	exp := metrics.NewExporter(col,
		metrics.WithExporterClock(ck.now),
		metrics.WithExtraGauges(e.Gauges))
	var b strings.Builder
	if err := exp.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	body := b.String()
	if err := metrics.Lint([]byte(body)); err != nil {
		t.Fatalf("exposition with SLO gauges rejected: %v\n%s", err, body)
	}
	if !strings.Contains(body, `textjoin_slo_burn_rate{objective="availability"}`) {
		t.Fatalf("exposition lacks labelled slo gauges:\n%s", body)
	}
}

func TestNilEngine(t *testing.T) {
	var e *Engine
	if e.Collect() != nil || e.Gauges() != nil || e.Objectives() != nil {
		t.Fatal("nil engine must be inert")
	}
}
