// Package slo computes service-level objectives — availability and
// latency targets — over rolling windows of telemetry snapshots, and
// derives the two numbers an operator actually pages on: error budget
// remaining and burn rate.
//
// The engine is deliberately thin: it owns no clock ticker and no
// goroutine. Each /metrics scrape (or loadgen -check probe) drives one
// Collect, which snapshots the collector, appends a timestamped sample
// of the cumulative good/bad counts per objective, trims samples that
// fell out of the window, and reports the delta between the newest
// sample and the oldest retained one. Between scrapes nothing runs and
// nothing is locked, so the join hot path never sees this package.
//
// The math is the standard SRE formulation. Over the window,
//
//	compliance       = good / (good + bad)        (1 with no traffic)
//	allowed bad frac = 1 - target
//	burn rate        = badFrac / (1 - target)     (1.0 = spending budget
//	                                               exactly as fast as
//	                                               the SLO allows)
//	budget remaining = 1 - burn rate              (negative = SLO blown)
//
// Like every internal package under the wallclock lint, the engine
// reads time only through the injected clock.
package slo

import (
	"fmt"
	"sync"
	"time"

	"textjoin/internal/metrics"
	"textjoin/internal/telemetry"
)

// DefaultWindow is the rolling window when New is given none.
const DefaultWindow = 5 * time.Minute

// Objective is one service-level objective. Exactly one of the two
// shapes is set:
//
//   - Latency: Histogram names a telemetry histogram (nanosecond
//     observations); an observation is good when its bucket's upper
//     bound is <= ThresholdNanos. Classification is bucket-resolution:
//     a bucket straddling the threshold counts bad, so the reported
//     compliance is a lower bound.
//   - Availability: Good and Bad name telemetry counters; their sums
//     are the good/bad event counts.
type Objective struct {
	// Name labels the objective in exported gauges.
	Name string
	// Target is the objective, in (0, 1), e.g. 0.99.
	Target float64

	// Histogram + ThresholdNanos define a latency objective.
	Histogram      string
	ThresholdNanos int64

	// Good and Bad define an availability objective.
	Good []string
	Bad  []string
}

func (o Objective) validate() error {
	if o.Name == "" {
		return fmt.Errorf("slo: objective with empty name")
	}
	if o.Target <= 0 || o.Target >= 1 {
		return fmt.Errorf("slo: objective %s: target %v outside (0, 1)", o.Name, o.Target)
	}
	latency := o.Histogram != ""
	avail := len(o.Good) > 0 || len(o.Bad) > 0
	if latency == avail {
		return fmt.Errorf("slo: objective %s: set either Histogram or Good/Bad counters", o.Name)
	}
	if latency && o.ThresholdNanos <= 0 {
		return fmt.Errorf("slo: objective %s: latency objective needs ThresholdNanos > 0", o.Name)
	}
	return nil
}

// Status is one objective's state over the current window.
type Status struct {
	Name   string
	Target float64
	// Good and Bad are the event counts inside the window.
	Good, Bad int64
	// Compliance is good/(good+bad); 1 with no traffic.
	Compliance float64
	// BudgetRemaining is the fraction of the window's error budget left
	// (1 = untouched, 0 = exhausted, negative = SLO violated).
	BudgetRemaining float64
	// BurnRate is how fast the budget is being spent relative to the
	// allowed rate (1.0 = exactly at the SLO boundary).
	BurnRate float64
	// WindowSeconds is the span actually covered (shorter than the
	// configured window until enough samples accumulate).
	WindowSeconds float64
}

// sample is one timestamped reading of the cumulative good/bad counts.
type sample struct {
	at        time.Time
	good, bad []int64 // indexed by objective
}

// Engine evaluates objectives against a telemetry collector. Safe for
// concurrent use; Collect serializes on one short mutex. A nil *Engine
// is the disabled engine: Collect and Gauges return nothing.
type Engine struct {
	col        *telemetry.Collector
	now        func() time.Time
	window     time.Duration
	objectives []Objective

	mu      sync.Mutex
	samples []sample
}

// New creates an engine over col with the given rolling window
// (DefaultWindow when <= 0). The clock is required, as everywhere in
// this repo outside package telemetry. The engine seeds itself with
// one sample at creation, so the first Collect already has a baseline
// — objectives measure from engine start, not from process start.
func New(col *telemetry.Collector, now func() time.Time, window time.Duration, objectives []Objective) (*Engine, error) {
	if now == nil {
		panic("slo: New needs a clock")
	}
	if window <= 0 {
		window = DefaultWindow
	}
	for _, o := range objectives {
		if err := o.validate(); err != nil {
			return nil, err
		}
	}
	e := &Engine{col: col, now: now, window: window, objectives: objectives}
	e.samples = append(e.samples, e.read())
	return e, nil
}

// Objectives returns the configured objectives.
func (e *Engine) Objectives() []Objective {
	if e == nil {
		return nil
	}
	return e.objectives
}

// read takes one cumulative sample from the collector.
func (e *Engine) read() sample {
	s := sample{
		at:   e.now(),
		good: make([]int64, len(e.objectives)),
		bad:  make([]int64, len(e.objectives)),
	}
	snap := e.col.Snapshot()
	hists := make(map[string]*telemetry.HistogramValue, len(snap.Histograms))
	for i := range snap.Histograms {
		hists[snap.Histograms[i].Name] = &snap.Histograms[i]
	}
	counters := make(map[string]int64, len(snap.Counters))
	for _, c := range snap.Counters {
		counters[c.Name] = c.Value
	}
	for i, o := range e.objectives {
		if o.Histogram != "" {
			h, ok := hists[o.Histogram]
			if !ok {
				continue
			}
			for _, b := range h.Buckets {
				if b.Le <= o.ThresholdNanos {
					s.good[i] += b.Count
				} else {
					s.bad[i] += b.Count
				}
			}
			continue
		}
		for _, name := range o.Good {
			s.good[i] += counters[name]
		}
		for _, name := range o.Bad {
			s.bad[i] += counters[name]
		}
	}
	return s
}

// Collect takes a fresh sample, slides the window, and returns every
// objective's status over it. Nil engine returns nil.
func (e *Engine) Collect() []Status {
	if e == nil {
		return nil
	}
	cur := e.read()

	e.mu.Lock()
	// Drop samples older than the window, but always keep the newest
	// too-old one: it is the baseline the window delta measures from.
	cutoff := cur.at.Add(-e.window)
	keep := 0
	for i, s := range e.samples {
		if s.at.After(cutoff) {
			break
		}
		keep = i
	}
	e.samples = e.samples[keep:]
	base := e.samples[0]
	e.samples = append(e.samples, cur)
	e.mu.Unlock()

	out := make([]Status, len(e.objectives))
	for i, o := range e.objectives {
		good := cur.good[i] - base.good[i]
		bad := cur.bad[i] - base.bad[i]
		if good < 0 {
			good = 0
		}
		if bad < 0 {
			bad = 0
		}
		st := Status{
			Name:          o.Name,
			Target:        o.Target,
			Good:          good,
			Bad:           bad,
			Compliance:    1,
			WindowSeconds: cur.at.Sub(base.at).Seconds(),
		}
		if total := good + bad; total > 0 {
			st.Compliance = float64(good) / float64(total)
			badFrac := float64(bad) / float64(total)
			st.BurnRate = badFrac / (1 - o.Target)
		}
		st.BudgetRemaining = 1 - st.BurnRate
		out[i] = st
	}
	return out
}

// Gauges runs Collect and renders the result as exporter gauges — the
// textjoin_slo_* families. Wire it with metrics.WithExtraGauges so
// every /metrics scrape re-evaluates the window. Nil engine returns
// nil.
func (e *Engine) Gauges() []metrics.Gauge {
	if e == nil {
		return nil
	}
	statuses := e.Collect()
	out := make([]metrics.Gauge, 0, 5*len(statuses))
	for _, st := range statuses {
		add := func(family, help string, v float64) {
			out = append(out, metrics.Gauge{
				Family:     metrics.Namespace + "_slo_" + family,
				Help:       help,
				LabelKey:   "objective",
				LabelValue: st.Name,
				Value:      v,
			})
		}
		add("target", "Configured objective target.", st.Target)
		add("compliance", "Fraction of good events over the rolling SLO window (1 with no traffic).", st.Compliance)
		add("error_budget_remaining", "Fraction of the window's error budget left; negative means the SLO is violated.", st.BudgetRemaining)
		add("burn_rate", "Error budget spend rate relative to the allowed rate; above 1 the SLO is being violated.", st.BurnRate)
		add("window_seconds", "Span actually covered by the rolling SLO window.", st.WindowSeconds)
	}
	return out
}
