// Package stats measures the join statistics the paper's cost model
// consumes — the term-overlap probabilities p and q and the non-zero
// similarity fraction δ — from built collections, instead of assuming
// them.
//
// The paper's simulation derives q from a three-band formula over T1/T2
// and fixes δ = 0.1; an IR system, however, has the document-frequency
// tables in memory and can measure both quantities exactly (q) or
// estimate them well (δ) at negligible cost. The integrated planner uses
// these measured values, which is the difference between simulating the
// paper and running it.
package stats

import (
	"io"
	"math"

	"textjoin/internal/collection"
	"textjoin/internal/document"
)

// OverlapQ returns the measured probability that a distinct term of the
// outer collection also appears in the inner collection: the paper's q
// (and, with the arguments swapped, p). Both document-frequency tables are
// memory-resident, so the measurement is free of I/O.
func OverlapQ(inner, outer *collection.Collection) float64 {
	outerDF := outer.DFMap()
	if len(outerDF) == 0 {
		return 0
	}
	shared := 0
	for term := range outerDF {
		if inner.HasTerm(term) {
			shared++
		}
	}
	return float64(shared) / float64(len(outerDF))
}

// OverlapQReader measures q for any outer document source (collection,
// subset or memory-resident batch) against the inner collection.
func OverlapQReader(inner *collection.Collection, outer collection.Reader) float64 {
	terms := outer.Terms()
	if len(terms) == 0 {
		return 0
	}
	shared := 0
	for _, term := range terms {
		if inner.HasTerm(term) {
			shared++
		}
	}
	return float64(shared) / float64(len(terms))
}

// Delta estimates δ, the fraction of document pairs with non-zero
// similarity, from the document-frequency tables alone: under term
// independence, a random pair (d1, d2) shares term t with probability
// (df1(t)/N1)·(df2(t)/N2), so
//
//	δ ≈ 1 − Π over common terms t of (1 − df1(t)·df2(t)/(N1·N2)).
//
// The product is evaluated in log space for stability. No documents are
// read; the estimate is deterministic.
func Delta(c1, c2 *collection.Collection) float64 {
	n1, n2 := c1.NumDocs(), c2.NumDocs()
	if n1 == 0 || n2 == 0 {
		return 0
	}
	df2 := c2.DFMap()
	// Iterate the smaller vocabulary.
	df1 := c1.DFMap()
	small, other := df1, df2
	swap := false
	if len(df2) < len(df1) {
		small, other = df2, df1
		swap = true
	}
	logNone := 0.0
	total := float64(n1) * float64(n2)
	for term, dfA := range small {
		dfB, ok := other[term]
		if !ok {
			continue
		}
		a, b := float64(dfA), float64(dfB)
		if swap {
			a, b = b, a
		}
		p := a * b / total
		if p >= 1 {
			return 1
		}
		logNone += math.Log1p(-p)
	}
	return 1 - math.Exp(logNone)
}

// DeltaExact counts the non-zero similarity fraction exactly by streaming
// both collections (O(N1·N2) similarity tests); used to validate Delta in
// tests and tractable only for small collections.
func DeltaExact(c1, c2 *collection.Collection) (float64, error) {
	docs1, err := loadAll(c1)
	if err != nil {
		return 0, err
	}
	docs2, err := loadAll(c2)
	if err != nil {
		return 0, err
	}
	if len(docs1) == 0 || len(docs2) == 0 {
		return 0, nil
	}
	nonZero := 0
	for _, d1 := range docs1 {
		terms := make(map[uint32]bool, len(d1.Cells))
		for _, c := range d1.Cells {
			terms[c.Term] = true
		}
		for _, d2 := range docs2 {
			for _, c := range d2.Cells {
				if terms[c.Term] {
					nonZero++
					break
				}
			}
		}
	}
	return float64(nonZero) / (float64(len(docs1)) * float64(len(docs2))), nil
}

func loadAll(c *collection.Collection) ([]*document.Document, error) {
	var docs []*document.Document
	sc := c.Scan()
	for {
		d, err := sc.Next()
		if err == io.EOF {
			return docs, nil
		}
		if err != nil {
			return nil, err
		}
		docs = append(docs, d)
	}
}
