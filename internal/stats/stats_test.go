package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"textjoin/internal/collection"
	"textjoin/internal/corpus"
	"textjoin/internal/document"
	"textjoin/internal/iosim"
)

func build(t testing.TB, d *iosim.Disk, name string, docs []*document.Document) *collection.Collection {
	t.Helper()
	f, err := d.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	b, err := collection.NewBuilder(name, f)
	if err != nil {
		t.Fatal(err)
	}
	for _, doc := range docs {
		if err := b.Add(doc); err != nil {
			t.Fatal(err)
		}
	}
	c, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func mkdoc(id uint32, terms ...uint32) *document.Document {
	counts := make(map[uint32]int, len(terms))
	for _, t := range terms {
		counts[t]++
	}
	return document.New(id, counts)
}

func TestOverlapQExact(t *testing.T) {
	d := iosim.NewDisk(iosim.WithPageSize(128))
	inner := build(t, d, "inner", []*document.Document{mkdoc(0, 1, 2, 3)})
	outer := build(t, d, "outer", []*document.Document{mkdoc(0, 2, 3, 4, 5)})
	// Outer vocabulary {2,3,4,5}; {2,3} also in inner => q = 0.5.
	if got := OverlapQ(inner, outer); got != 0.5 {
		t.Errorf("OverlapQ = %v, want 0.5", got)
	}
	// And p, the reverse direction: inner {1,2,3}, 2 of 3 in outer.
	if got := OverlapQ(outer, inner); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("p = %v, want 2/3", got)
	}
}

func TestOverlapQEmpty(t *testing.T) {
	d := iosim.NewDisk(iosim.WithPageSize(128))
	empty := build(t, d, "empty", nil)
	full := build(t, d, "full", []*document.Document{mkdoc(0, 1)})
	if got := OverlapQ(full, empty); got != 0 {
		t.Errorf("empty outer q = %v", got)
	}
	if got := OverlapQ(empty, full); got != 0 {
		t.Errorf("empty inner q = %v", got)
	}
}

func TestOverlapQReader(t *testing.T) {
	d := iosim.NewDisk(iosim.WithPageSize(128))
	inner := build(t, d, "inner", []*document.Document{mkdoc(0, 1, 2, 3)})
	outer := build(t, d, "outer", []*document.Document{mkdoc(0, 2, 3, 4, 5)})
	// Full collection as Reader matches OverlapQ.
	if got := OverlapQReader(inner, outer); got != 0.5 {
		t.Errorf("reader q = %v, want 0.5", got)
	}
	// A subset measures over the base vocabulary (the IR system's
	// stored statistics).
	sub, err := outer.Subset([]uint32{0})
	if err != nil {
		t.Fatal(err)
	}
	if got := OverlapQReader(inner, sub); got != 0.5 {
		t.Errorf("subset q = %v, want 0.5", got)
	}
	// A batch measures over its own explicitly collected vocabulary.
	batch, err := collection.NewBatch("b", []*document.Document{mkdoc(0, 3, 9)})
	if err != nil {
		t.Fatal(err)
	}
	if got := OverlapQReader(inner, batch); got != 0.5 {
		t.Errorf("batch q = %v, want 0.5", got)
	}
	empty, err := collection.NewBatch("e", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := OverlapQReader(inner, empty); got != 0 {
		t.Errorf("empty batch q = %v", got)
	}
}

func TestDeltaDegenerate(t *testing.T) {
	d := iosim.NewDisk(iosim.WithPageSize(128))
	empty := build(t, d, "empty", nil)
	full := build(t, d, "full", []*document.Document{mkdoc(0, 1)})
	if got := Delta(empty, full); got != 0 {
		t.Errorf("Delta with empty = %v", got)
	}
	// Identical single docs always share terms: δ = 1.
	one := build(t, d, "one", []*document.Document{mkdoc(0, 7)})
	two := build(t, d, "two", []*document.Document{mkdoc(0, 7)})
	if got := Delta(one, two); math.Abs(got-1) > 1e-9 {
		t.Errorf("Delta identical singletons = %v, want 1", got)
	}
	// Disjoint vocabularies: δ = 0.
	three := build(t, d, "three", []*document.Document{mkdoc(0, 99)})
	if got := Delta(one, three); got != 0 {
		t.Errorf("Delta disjoint = %v, want 0", got)
	}
}

func TestDeltaAgainstExact(t *testing.T) {
	d := iosim.NewDisk(iosim.WithPageSize(4096))
	p := corpus.Profile{Name: "a", NumDocs: 120, TermsPerDoc: 12, DistinctTerms: 600}
	c1, err := corpus.GenerateOn(d, "c1", p, 1)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := corpus.GenerateOn(d, "c2", p, 2)
	if err != nil {
		t.Fatal(err)
	}
	est := Delta(c1, c2)
	exact, err := DeltaExact(c1, c2)
	if err != nil {
		t.Fatal(err)
	}
	if est <= 0 || est > 1 || exact <= 0 || exact > 1 {
		t.Fatalf("est=%v exact=%v out of range", est, exact)
	}
	// The independence estimate tracks the exact value closely on Zipf
	// corpora (terms are not independent, so allow a generous band).
	if est < exact*0.5 || est > exact*1.5 {
		t.Errorf("Delta estimate %v vs exact %v (off by more than 50%%)", est, exact)
	}
	t.Logf("delta: estimate=%.4f exact=%.4f", est, exact)
}

func TestDeltaExactEmpty(t *testing.T) {
	d := iosim.NewDisk(iosim.WithPageSize(128))
	empty := build(t, d, "empty", nil)
	full := build(t, d, "full", []*document.Document{mkdoc(0, 1)})
	got, err := DeltaExact(empty, full)
	if err != nil || got != 0 {
		t.Errorf("DeltaExact = %v, %v", got, err)
	}
}

// Property: both statistics stay in [0,1], OverlapQ is 1 for identical
// collections, and Delta never exceeds the overlap-implied upper bound of
// 1.
func TestQuickRanges(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := iosim.NewDisk(iosim.WithPageSize(256))
		mk := func(name string) *collection.Collection {
			docs := make([]*document.Document, r.Intn(20)+1)
			for i := range docs {
				counts := make(map[uint32]int)
				for j := 0; j < r.Intn(8)+1; j++ {
					counts[uint32(r.Intn(40))]++
				}
				docs[i] = document.New(uint32(i), counts)
			}
			f, _ := d.Create(name)
			b, _ := collection.NewBuilder(name, f)
			for _, doc := range docs {
				if err := b.Add(doc); err != nil {
					return nil
				}
			}
			c, err := b.Finish()
			if err != nil {
				return nil
			}
			return c
		}
		c1 := mk("c1")
		c2 := mk("c2")
		if c1 == nil || c2 == nil {
			return false
		}
		q := OverlapQ(c1, c2)
		delta := Delta(c1, c2)
		if q < 0 || q > 1 || delta < 0 || delta > 1 {
			return false
		}
		if OverlapQ(c1, c1) != 1 {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
