// Package metrics exports telemetry snapshots in the Prometheus text
// exposition format (version 0.0.4), with zero dependencies beyond the
// standard library.
//
// The paper's analysis lives and dies by counters — page reads split
// sequential/random, cache hits, pass counts — and internal/telemetry
// already collects all of them while a join runs. This package gives
// those counters a stable wire shape so a long-running join service can
// be watched by any Prometheus-compatible scraper:
//
//   - every metric is namespaced "textjoin_",
//   - structured telemetry names become families with labels
//     (io.file.c1.inv.seq → textjoin_iosim_file_seq_reads_total{file="c1.inv"}),
//   - join counters keep the algorithm in the family name, per the
//     naming scheme textjoin_join_<alg>_* (DESIGN.md §10),
//   - telemetry histograms become Prometheus histograms with cumulative
//     buckets,
//   - successive scrapes additionally export per-second rate gauges
//     computed from Snapshot.Diff (see Exporter).
//
// The mapping is pure renaming: no counter is merged, split or rescaled,
// so a Prometheus query over textjoin_join_vvm_io_seq_total sees exactly
// the numbers the paper's Stats struct reports.
package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"textjoin/internal/telemetry"
)

// Namespace prefixes every exported metric name.
const Namespace = "textjoin"

// ContentType is the HTTP content type of the text exposition format.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// labelPair is one metric label. Pairs are kept sorted by key; the
// histogram "le" label is appended last by the encoder, as the format
// requires for bucket series.
type labelPair struct{ key, value string }

// series is one sample line of a counter or gauge family.
type series struct {
	labels []labelPair
	value  float64
	// isInt selects integer formatting (counters), keeping the output
	// byte-stable across platforms.
	isInt bool
	ival  int64
}

// histSeries is one labelled histogram within a histogram family.
type histSeries struct {
	labels  []labelPair
	buckets []telemetry.Bucket // per-bucket counts, as in the snapshot
	sum     int64
	count   int64
}

// family is one named metric family of a single type.
type family struct {
	name string
	help string
	typ  string // "counter", "gauge" or "histogram"
	ser  []series
	hist []histSeries
}

// mapCounter translates a telemetry counter name into a metric family
// name plus labels. The rules mirror the namespaces the instrumented
// layers use (DESIGN.md §10 documents the scheme):
//
//	io.file.<file>.seq|rand|writes → textjoin_iosim_file_{seq,rand}_reads_total /
//	                                 textjoin_iosim_file_writes_total  {file}
//	cache.<policy>.<event>         → textjoin_entrycache_<event>_total {policy}
//	join.<alg>.worker.<n>.<stat>   → textjoin_join_<alg>_worker_<stat>_total {worker}
//	join.<alg>.accum.<kind>        → textjoin_join_<alg>_accum_total   {kind}
//	join.<alg>.<stat>              → textjoin_join_<alg>_<stat>_total
//	plan.chosen.<alg>              → textjoin_plan_chosen_total        {alg}
//	query.<stat>                   → textjoin_query_<stat>_total
//	http.<stat>                    → textjoin_http_<stat>_total, or the
//	                                 suffix-less gauge family for levels
//	                                 (see gaugeFamilies)
//	anything else                  → textjoin_<sanitized>_total
func mapCounter(name string) (string, []labelPair) {
	switch {
	case strings.HasPrefix(name, "io.file."):
		rest := strings.TrimPrefix(name, "io.file.")
		if i := strings.LastIndex(rest, "."); i > 0 {
			file, kind := rest[:i], rest[i+1:]
			switch kind {
			case "seq", "rand":
				return Namespace + "_iosim_file_" + kind + "_reads_total",
					[]labelPair{{"file", file}}
			case "writes":
				return Namespace + "_iosim_file_writes_total",
					[]labelPair{{"file", file}}
			}
		}
	case strings.HasPrefix(name, "cache."):
		rest := strings.TrimPrefix(name, "cache.")
		if i := strings.LastIndex(rest, "."); i > 0 {
			policy, event := rest[:i], rest[i+1:]
			return Namespace + "_entrycache_" + sanitize(event) + "_total",
				[]labelPair{{"policy", policy}}
		}
	case strings.HasPrefix(name, "join."):
		parts := strings.Split(name, ".")
		if len(parts) >= 3 {
			alg := sanitize(parts[1])
			switch {
			case parts[2] == "worker" && len(parts) >= 5:
				stat := sanitize(strings.Join(parts[4:], "_"))
				return Namespace + "_join_" + alg + "_worker_" + stat + "_total",
					[]labelPair{{"worker", parts[3]}}
			case parts[2] == "accum" && len(parts) == 4:
				return Namespace + "_join_" + alg + "_accum_total",
					[]labelPair{{"kind", parts[3]}}
			case parts[2] == "prefilter" && len(parts) == 4:
				return Namespace + "_prefilter_" + sanitize(parts[3]) + "_total",
					[]labelPair{{"alg", parts[1]}}
			default:
				stat := sanitize(strings.Join(parts[2:], "_"))
				return Namespace + "_join_" + alg + "_" + stat + "_total", nil
			}
		}
	case strings.HasPrefix(name, "plan.chosen."):
		return Namespace + "_plan_chosen_total",
			[]labelPair{{"alg", strings.TrimPrefix(name, "plan.chosen.")}}
	case strings.HasPrefix(name, "query."):
		return Namespace + "_query_" + sanitize(strings.TrimPrefix(name, "query.")) + "_total", nil
	case strings.HasPrefix(name, "http."):
		stat := sanitize(strings.TrimPrefix(name, "http."))
		if g := Namespace + "_http_" + stat; gaugeFamilies[g] {
			return g, nil
		}
		return Namespace + "_http_" + stat + "_total", nil
	}
	return Namespace + "_" + sanitize(name) + "_total", nil
}

// gaugeFamilies are families fed by telemetry counters that the serving
// layer moves both up and down (Add(±1) around a state change): their
// exported value is a level, not a monotone total, so they are typed
// gauge, carry no _total suffix, and get no derived per-second rate.
var gaugeFamilies = map[string]bool{
	Namespace + "_http_inflight":    true,
	Namespace + "_http_queue_depth": true,
}

// mapHistogram translates a telemetry histogram name into a family name
// plus labels:
//
//	io.readat.pages / io.readat.ns → textjoin_iosim_readat_{pages,ns}
//	phase.<phase>.ns               → textjoin_phase_ns {phase}
//	http.request.<endpoint>.ns     → textjoin_http_request_ns {endpoint}
//	<alg>.accum.occupancy          → textjoin_join_<alg>_accum_occupancy
//	anything else                  → textjoin_<sanitized>
func mapHistogram(name string) (string, []labelPair) {
	parts := strings.Split(name, ".")
	switch {
	case strings.HasPrefix(name, "io.readat."):
		return Namespace + "_iosim_readat_" + sanitize(strings.TrimPrefix(name, "io.readat.")), nil
	case len(parts) == 3 && parts[0] == "phase" && parts[2] == "ns":
		return Namespace + "_phase_ns", []labelPair{{"phase", parts[1]}}
	case len(parts) == 4 && parts[0] == "http" && parts[1] == "request" && parts[3] == "ns":
		return Namespace + "_http_request_ns", []labelPair{{"endpoint", sanitize(parts[2])}}
	case len(parts) == 3 && parts[1] == "accum" && parts[2] == "occupancy":
		return Namespace + "_join_" + sanitize(parts[0]) + "_accum_occupancy", nil
	case name == "plan.error.log2":
		return Namespace + "_plan_error_log2", nil
	}
	return Namespace + "_" + sanitize(name), nil
}

// helpFor returns the HELP text of a family. Known families get specific
// text; mapped fallbacks a generic one.
func helpFor(name string) string {
	switch {
	case strings.HasPrefix(name, Namespace+"_iosim_file_seq"):
		return "Sequential page reads per simulated file."
	case strings.HasPrefix(name, Namespace+"_iosim_file_rand"):
		return "Random page reads per simulated file."
	case strings.HasPrefix(name, Namespace+"_iosim_file_writes"):
		return "Page writes per simulated file."
	case name == Namespace+"_iosim_readat_pages":
		return "Pages spanned per record fetch."
	case name == Namespace+"_iosim_readat_ns":
		return "Record fetch latency in nanoseconds."
	case strings.HasPrefix(name, Namespace+"_entrycache_"):
		return "Entry cache events by replacement policy."
	case name == Namespace+"_plan_chosen_total":
		return "Integrated-algorithm choices by algorithm."
	case strings.HasPrefix(name, Namespace+"_prefilter_"):
		return "Signature prefilter pruning outcomes by join algorithm."
	case name == Namespace+"_phase_ns":
		return "Span durations per execution phase in nanoseconds."
	case name == Namespace+"_http_inflight":
		return "Join requests currently admitted and executing."
	case name == Namespace+"_http_queue_depth":
		return "Join requests parked in the admission queue."
	case name == Namespace+"_http_rejected_total":
		return "Join requests rejected by admission control (queue full or wait deadline)."
	case name == Namespace+"_http_request_ns":
		return "HTTP request latency per endpoint in nanoseconds."
	case name == Namespace+"_plan_error_log2":
		return "Planner cost error per integrated join: milli-log2 of measured over estimated cost."
	case strings.HasPrefix(name, Namespace+"_slo_"):
		return "Service-level objective gauge computed over the rolling SLO window."
	case strings.HasPrefix(name, Namespace+"_join_"):
		return "Join execution counter (see DESIGN.md §10 naming scheme)."
	case strings.HasPrefix(name, Namespace+"_query_"):
		return "Extended-SQL query layer counter."
	case name == Namespace+"_trace_entries":
		return "Trace ring entries surviving in the snapshot."
	case name == Namespace+"_trace_dropped_total":
		return "Trace ring entries overwritten before export."
	case name == Namespace+"_scrapes_total":
		return "Metrics scrapes served by this exporter."
	}
	return "Telemetry metric exported by textjoin."
}

// sanitize rewrites s into a legal metric-name fragment:
// [a-zA-Z0-9_], never starting with a digit.
func sanitize(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for i, r := range s {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
		if !ok {
			b.WriteByte('_')
			continue
		}
		if i == 0 && r >= '0' && r <= '9' {
			b.WriteByte('_')
		}
		b.WriteRune(r)
	}
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// familySet accumulates series into families keyed by name.
type familySet struct {
	byName map[string]*family
}

func newFamilySet() *familySet { return &familySet{byName: make(map[string]*family)} }

func (fs *familySet) get(name, typ string) *family {
	f, ok := fs.byName[name]
	if !ok {
		f = &family{name: name, help: helpFor(name), typ: typ}
		fs.byName[name] = f
	}
	return f
}

func (fs *familySet) addInt(name, typ string, labels []labelPair, v int64) {
	f := fs.get(name, typ)
	f.ser = append(f.ser, series{labels: labels, isInt: true, ival: v})
}

func (fs *familySet) addFloat(name, typ string, labels []labelPair, v float64) {
	f := fs.get(name, typ)
	f.ser = append(f.ser, series{labels: labels, value: v})
}

// addSnapshot folds a snapshot's counters and histograms into the set.
func (fs *familySet) addSnapshot(s *telemetry.Snapshot) {
	for _, c := range s.Counters {
		name, labels := mapCounter(c.Name)
		typ := "counter"
		if gaugeFamilies[name] {
			typ = "gauge"
		}
		fs.addInt(name, typ, labels, c.Value)
	}
	for _, h := range s.Histograms {
		name, labels := mapHistogram(h.Name)
		f := fs.get(name, "histogram")
		f.hist = append(f.hist, histSeries{labels: labels, buckets: h.Buckets, sum: h.Sum, count: h.Count})
	}
	fs.addInt(Namespace+"_trace_entries", "gauge", nil, int64(len(s.Trace)))
	fs.addInt(Namespace+"_trace_dropped_total", "counter", nil, int64(s.TraceDropped))
}

// addRates folds per-second rate gauges derived from a counter-delta
// snapshot (Snapshot.Diff between two scrapes) over elapsed seconds.
// Families keep their mapped name with "_total" replaced by
// "_per_second".
func (fs *familySet) addRates(diff *telemetry.Snapshot, elapsed float64) {
	if diff == nil || elapsed <= 0 {
		return
	}
	for _, c := range diff.Counters {
		name, labels := mapCounter(c.Name)
		if gaugeFamilies[name] {
			// A level can fall between scrapes; its delta is not a rate.
			continue
		}
		name = strings.TrimSuffix(name, "_total") + "_per_second"
		fs.addFloat(name, "gauge", labels, float64(c.Value)/elapsed)
	}
}

// labelString renders a label set (plus an optional le pair) for a
// sample line.
func labelString(labels []labelPair, le string) string {
	if len(labels) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.key, escapeLabel(l.value))
	}
	if le != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "le=%q", le)
	}
	b.WriteByte('}')
	return b.String()
}

// leString formats a bucket bound; the overflow bucket renders "+Inf".
func leString(le int64) string {
	if le == int64(^uint64(0)>>1) {
		return "+Inf"
	}
	return strconv.FormatInt(le, 10)
}

// write renders the set in name order.
func (fs *familySet) write(w io.Writer) error {
	names := make([]string, 0, len(fs.byName))
	for n := range fs.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	ew := &errWriter{w: w}
	for _, n := range names {
		f := fs.byName[n]
		sort.Slice(f.ser, func(i, j int) bool {
			return labelString(f.ser[i].labels, "") < labelString(f.ser[j].labels, "")
		})
		sort.Slice(f.hist, func(i, j int) bool {
			return labelString(f.hist[i].labels, "") < labelString(f.hist[j].labels, "")
		})
		ew.printf("# HELP %s %s\n", f.name, f.help)
		ew.printf("# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.ser {
			if s.isInt {
				ew.printf("%s%s %d\n", f.name, labelString(s.labels, ""), s.ival)
			} else {
				ew.printf("%s%s %s\n", f.name, labelString(s.labels, ""), formatFloat(s.value))
			}
		}
		for _, h := range f.hist {
			cum := int64(0)
			for _, b := range h.buckets {
				cum += b.Count
				ew.printf("%s_bucket%s %d\n", f.name, labelString(h.labels, leString(b.Le)), cum)
			}
			ew.printf("%s_sum%s %d\n", f.name, labelString(h.labels, ""), h.sum)
			ew.printf("%s_count%s %d\n", f.name, labelString(h.labels, ""), h.count)
		}
	}
	return ew.err
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// errWriter folds the repeated error checks of sequential Fprintf calls.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err == nil {
		_, e.err = fmt.Fprintf(e.w, format, args...)
	}
}

// Encode writes one snapshot as Prometheus text with no rate gauges —
// the stateless rendering used by -prom flags and tests. Use an Exporter
// for scrape-to-scrape rates.
func Encode(w io.Writer, s *telemetry.Snapshot) error {
	if s == nil {
		s = &telemetry.Snapshot{}
	}
	fs := newFamilySet()
	fs.addSnapshot(s)
	return fs.write(w)
}
