package metrics

import (
	"strings"
	"testing"
	"time"

	"textjoin/internal/telemetry"
)

// demoCollector populates one counter/histogram of every namespace the
// instrumented layers use, exercising each naming rule.
func demoCollector() *telemetry.Collector {
	c := telemetry.New(telemetry.WithClock(func() func() time.Time {
		t := time.Unix(0, 0)
		return func() time.Time { t = t.Add(time.Millisecond); return t }
	}()))
	c.Counter("io.file.c1.inv.seq").Add(12)
	c.Counter("io.file.c1.inv.rand").Add(3)
	c.Counter("io.file.c1.writes").Add(7)
	c.Counter("cache.min-outer-df.hits").Add(40)
	c.Counter("cache.min-outer-df.misses").Add(9)
	c.Counter("join.hvnl.outer_docs").Add(100)
	c.Counter("join.hvnl.io.seq").Add(55)
	c.Counter("join.hvnl.worker.3.routed_cells").Add(1000)
	c.Counter("join.vvm.accum.flat").Add(2)
	c.Counter("plan.chosen.hvnl").Add(1)
	c.Counter("query.statements").Add(5)
	c.Counter("http.inflight").Add(2)
	c.Counter("http.queue_depth").Add(1)
	c.Counter("http.rejected").Add(4)
	c.Histogram("http.request.join.ns", telemetry.DefaultLatencyBuckets).Observe(5000)
	c.Histogram("io.readat.pages", telemetry.DefaultSizeBuckets).Observe(3)
	c.Histogram("hvnl.accum.occupancy", telemetry.DefaultSizeBuckets).Observe(17)
	c.StartSpan(telemetry.PhaseScan, "demo").End()
	c.Event(telemetry.PhaseIO, "fault", 1)
	return c
}

// TestEncodeNaming pins the stable naming scheme of DESIGN.md §10.
func TestEncodeNaming(t *testing.T) {
	var sb strings.Builder
	if err := Encode(&sb, demoCollector().Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	wantLines := []string{
		`textjoin_iosim_file_seq_reads_total{file="c1.inv"} 12`,
		`textjoin_iosim_file_rand_reads_total{file="c1.inv"} 3`,
		`textjoin_iosim_file_writes_total{file="c1"} 7`,
		`textjoin_entrycache_hits_total{policy="min-outer-df"} 40`,
		`textjoin_entrycache_misses_total{policy="min-outer-df"} 9`,
		`textjoin_join_hvnl_outer_docs_total 100`,
		`textjoin_join_hvnl_io_seq_total 55`,
		`textjoin_join_hvnl_worker_routed_cells_total{worker="3"} 1000`,
		`textjoin_join_vvm_accum_total{kind="flat"} 2`,
		`textjoin_plan_chosen_total{alg="hvnl"} 1`,
		`textjoin_query_statements_total 5`,
		"# TYPE textjoin_http_inflight gauge",
		`textjoin_http_inflight 2`,
		"# TYPE textjoin_http_queue_depth gauge",
		`textjoin_http_queue_depth 1`,
		"# TYPE textjoin_http_rejected_total counter",
		`textjoin_http_rejected_total 4`,
		"# TYPE textjoin_http_request_ns histogram",
		`textjoin_http_request_ns_count{endpoint="join"} 1`,
		`textjoin_trace_entries 2`,
		`textjoin_trace_dropped_total 0`,
		"# TYPE textjoin_phase_ns histogram",
		`textjoin_phase_ns_count{phase="scan"} 1`,
		"# TYPE textjoin_iosim_readat_pages histogram",
		"# TYPE textjoin_join_hvnl_accum_occupancy histogram",
		`textjoin_join_hvnl_accum_occupancy_bucket{le="+Inf"} 1`,
	}
	for _, want := range wantLines {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("output lacks line %q", want)
		}
	}
}

// TestEncodePassesLint is the exposition-format spot check: everything
// the encoder produces must survive the strict parser.
func TestEncodePassesLint(t *testing.T) {
	var sb strings.Builder
	if err := Encode(&sb, demoCollector().Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := Lint([]byte(sb.String())); err != nil {
		t.Fatalf("encoder output rejected by parser: %v\n%s", err, sb.String())
	}
	// The empty snapshot is a valid exposition too.
	sb.Reset()
	if err := Encode(&sb, nil); err != nil {
		t.Fatal(err)
	}
	if err := Lint([]byte(sb.String())); err != nil {
		t.Fatalf("empty exposition rejected: %v", err)
	}
}

func TestExporterRates(t *testing.T) {
	c := telemetry.New()
	ct := c.Counter("join.hvnl.comparisons")
	ct.Add(10)

	now := time.Unix(100, 0)
	e := NewExporter(c, WithExporterClock(func() time.Time {
		now = now.Add(2 * time.Second)
		return now
	}))

	var first strings.Builder
	if err := e.WriteMetrics(&first); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(first.String(), "_per_second") {
		t.Error("first scrape should have no rate gauges")
	}
	if !strings.Contains(first.String(), "textjoin_scrapes_total 1\n") {
		t.Error("first scrape lacks scrape counter")
	}

	ct.Add(30)
	var second strings.Builder
	if err := e.WriteMetrics(&second); err != nil {
		t.Fatal(err)
	}
	if want := "textjoin_join_hvnl_comparisons_per_second 15\n"; !strings.Contains(second.String(), want) {
		t.Errorf("second scrape lacks %q:\n%s", want, second.String())
	}
	if err := Lint([]byte(second.String())); err != nil {
		t.Fatalf("rated scrape rejected by parser: %v", err)
	}
}

// TestGaugeFamiliesGetNoRates: serving-level gauges (inflight, queue
// depth) move both ways, so a per-second delta would be meaningless —
// the rate pass must skip them while still rating true counters.
func TestGaugeFamiliesGetNoRates(t *testing.T) {
	c := telemetry.New()
	inflight := c.Counter("http.inflight")
	inflight.Add(3)
	rejected := c.Counter("http.rejected")
	rejected.Add(1)

	now := time.Unix(100, 0)
	e := NewExporter(c, WithExporterClock(func() time.Time {
		now = now.Add(2 * time.Second)
		return now
	}))
	var first strings.Builder
	if err := e.WriteMetrics(&first); err != nil {
		t.Fatal(err)
	}
	inflight.Add(-2) // requests finished
	rejected.Add(6)
	var second strings.Builder
	if err := e.WriteMetrics(&second); err != nil {
		t.Fatal(err)
	}
	out := second.String()
	if strings.Contains(out, "textjoin_http_inflight_per_second") ||
		strings.Contains(out, "textjoin_http_queue_depth_per_second") {
		t.Errorf("gauge family got a rate series:\n%s", out)
	}
	if !strings.Contains(out, "textjoin_http_rejected_per_second 3\n") {
		t.Errorf("counter family lost its rate series:\n%s", out)
	}
	if !strings.Contains(out, "textjoin_http_inflight 1\n") {
		t.Errorf("gauge level not exported:\n%s", out)
	}
	if err := Lint([]byte(out)); err != nil {
		t.Fatalf("scrape rejected by parser: %v\n%s", err, out)
	}
}

// TestExporterNilCollector: a server with telemetry disabled still
// answers /metrics with a valid (nearly empty) exposition.
func TestExporterNilCollector(t *testing.T) {
	e := NewExporter(nil)
	var sb strings.Builder
	if err := e.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	if err := Lint([]byte(sb.String())); err != nil {
		t.Fatalf("nil-collector exposition rejected: %v", err)
	}
	if !strings.Contains(sb.String(), "textjoin_scrapes_total 1\n") {
		t.Error("nil-collector scrape lacks scrape counter")
	}
}

func TestLintRejects(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"no-type", "textjoin_x_total 1\n", "precedes its TYPE"},
		{"dup-type", "# TYPE a counter\n# TYPE a counter\n", "duplicate TYPE"},
		{"bad-type", "# TYPE a blip\n", "unknown metric type"},
		{"negative-counter", "# TYPE a_total counter\na_total -1\n", "negative value"},
		{"counter-name", "# TYPE a counter\na 1\n", "does not end in _total"},
		{"dup-series", "# TYPE a gauge\na{x=\"1\"} 1\na{x=\"1\"} 2\n", "duplicate series"},
		{"timestamp", "# TYPE a gauge\na 1 12345\n", "no timestamps"},
		{"bad-label", "# TYPE a gauge\na{1x=\"v\"} 1\n", "invalid label name"},
		{"unterminated", "# TYPE a gauge\na{x=\"v} 1\n", "unterminated"},
		{"hist-no-inf", "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n", "+Inf"},
		{"hist-desc", "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n", "cumulative counts decrease"},
		{"hist-count", "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 5\n", "count 5"},
		{"hist-no-sum", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n", "_sum"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := Lint([]byte(tc.doc))
			if err == nil {
				t.Fatal("linter accepted a malformed exposition")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestSanitize(t *testing.T) {
	cases := map[string]string{
		"abc":       "abc",
		"a.b-c":     "a_b_c",
		"3x":        "_3x",
		"io.readat": "io_readat",
	}
	for in, want := range cases {
		if got := sanitize(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}
