package metrics

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"textjoin/internal/telemetry"
)

func TestTraceHandler(t *testing.T) {
	tick := time.Unix(0, 0)
	c := telemetry.New(telemetry.WithClock(func() time.Time {
		tick = tick.Add(time.Millisecond)
		return tick
	}))
	c.Event(telemetry.PhaseIO, "a", 1)
	c.StartSpan(telemetry.PhaseScan, "b").End()
	c.Event(telemetry.PhasePlan, "c", 3)

	srv := httptest.NewServer(TraceHandler(c))
	defer srv.Close()

	get := func(url string) string {
		t.Helper()
		resp, err := srv.Client().Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if err := telemetry.ValidateJSONLines(body); err != nil {
			t.Fatalf("trace stream rejected by validator: %v\n%s", err, body)
		}
		return string(body)
	}

	full := get(srv.URL)
	if n := strings.Count(full, "\n"); n != 3 {
		t.Errorf("full stream has %d lines, want 3:\n%s", n, full)
	}
	tail := get(srv.URL + "?since=1")
	if n := strings.Count(tail, "\n"); n != 1 {
		t.Errorf("since=1 stream has %d lines, want 1:\n%s", n, tail)
	}
	if !strings.Contains(tail, `"name":"c"`) {
		t.Errorf("since=1 stream lacks the newest entry:\n%s", tail)
	}

	resp, err := srv.Client().Get(srv.URL + "?since=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("bad since parameter: got status %d, want 400", resp.StatusCode)
	}
}
