package metrics

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"textjoin/internal/telemetry"
)

// Exporter serves a collector's state as Prometheus text, computing
// per-second rate gauges between successive scrapes via Snapshot.Diff.
//
// Scraping never blocks a running join's hot path: taking a snapshot
// reads counters and buckets atomically and holds the collector's short
// map and ring mutexes only while copying — the same operations the
// differential harness pins as safe concurrent with collection. A nil
// collector exports only the exporter's own scrape counter, so a server
// with telemetry disabled still answers /metrics.
//
// Exporter is safe for concurrent use; concurrent scrapes serialize only
// on the small previous-snapshot swap, not on encoding.
type Exporter struct {
	col   *telemetry.Collector
	now   func() time.Time
	extra func() []Gauge

	mu      sync.Mutex
	prev    *telemetry.Snapshot
	prevAt  time.Time
	scrapes int64
}

// Gauge is one externally-computed gauge sample injected into a scrape
// by a WithExtraGauges callback — the hook the SLO engine uses to
// export textjoin_slo_* families next to the telemetry-derived ones.
type Gauge struct {
	// Family is the full family name, e.g. "textjoin_slo_burn_rate".
	Family string
	// Help overrides the family HELP text when non-empty.
	Help string
	// LabelKey/LabelValue attach one label when LabelKey is non-empty.
	LabelKey, LabelValue string
	Value                float64
}

// ExporterOption configures an Exporter.
type ExporterOption func(*Exporter)

// WithExporterClock substitutes the time source used for rate windows,
// letting tests produce deterministic rates.
func WithExporterClock(now func() time.Time) ExporterOption {
	return func(e *Exporter) { e.now = now }
}

// WithExtraGauges registers a callback invoked on every scrape; the
// gauges it returns are rendered into the exposition alongside the
// snapshot-derived families. A nil callback is ignored.
func WithExtraGauges(fn func() []Gauge) ExporterOption {
	return func(e *Exporter) { e.extra = fn }
}

// NewExporter creates an exporter over col (which may be nil).
func NewExporter(col *telemetry.Collector, opts ...ExporterOption) *Exporter {
	// Rate gauges are wall-clock by design: they divide counter deltas
	// by real elapsed scrape time. Nothing byte-stable consumes them
	// (benchreport reads counters, not rates), and tests substitute
	// WithExporterClock.
	e := &Exporter{col: col, now: time.Now} //lint:ignore wallclock inter-scrape rate windows are real elapsed time; deterministic consumers inject WithExporterClock
	for _, o := range opts {
		o(e)
	}
	return e
}

// WriteMetrics takes a snapshot, renders it with rate gauges against the
// previous scrape, and remembers it for the next one. The first scrape
// has no rate window and exports totals only. A nil exporter writes
// nothing — the same disabled-path contract as a nil collector.
func (e *Exporter) WriteMetrics(w io.Writer) error {
	if e == nil {
		return nil
	}
	s := e.col.Snapshot()
	now := e.now()

	e.mu.Lock()
	prev, prevAt := e.prev, e.prevAt
	e.prev, e.prevAt = s, now
	e.scrapes++
	scrapes := e.scrapes
	e.mu.Unlock()

	fs := newFamilySet()
	fs.addSnapshot(s)
	if prev != nil {
		fs.addRates(s.Diff(prev), now.Sub(prevAt).Seconds())
	}
	fs.addInt(Namespace+"_scrapes_total", "counter", nil, scrapes)
	if e.extra != nil {
		for _, g := range e.extra() {
			f := fs.get(g.Family, "gauge")
			if g.Help != "" {
				f.help = g.Help
			}
			var labels []labelPair
			if g.LabelKey != "" {
				labels = []labelPair{{g.LabelKey, g.LabelValue}}
			}
			f.ser = append(f.ser, series{labels: labels, value: g.Value})
		}
	}
	return fs.write(w)
}

// ServeHTTP implements the /metrics endpoint. A nil exporter answers
// 503 instead of panicking, keeping accidental nil wiring observable.
func (e *Exporter) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if e == nil {
		http.Error(w, "metrics: nil exporter", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", ContentType)
	if err := e.WriteMetrics(w); err != nil {
		// Headers are gone; all we can do is drop the connection early.
		return
	}
}

// TraceHandler serves the collector's trace ring as JSONL — one
// telemetry Entry per line, ascending Seq, exactly the stream
// telemetry.ValidateJSONLines (and cmd/tracecheck) accepts. The
// optional ?since=<seq> query parameter returns only entries with
// Seq > since, so a poller can tail the ring across requests.
func TraceHandler(col *telemetry.Collector) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var since uint64
		haveSince := false
		if v := r.URL.Query().Get("since"); v != "" {
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				http.Error(w, "traces: bad since parameter: "+err.Error(), http.StatusBadRequest)
				return
			}
			since, haveSince = n, true
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		s := col.Snapshot()
		enc := json.NewEncoder(w)
		for _, e := range s.Trace {
			if haveSince && e.Seq <= since {
				continue
			}
			if err := enc.Encode(e); err != nil {
				return
			}
		}
	})
}
