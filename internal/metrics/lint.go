package metrics

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Lint strictly checks data against the Prometheus text exposition
// format as this package emits it: well-formed HELP/TYPE comments, every
// sample preceded by its family's TYPE line, legal metric and label
// names, no duplicate series, counters non-negative and "_total"-named,
// and histograms with ascending bucket bounds, non-decreasing cumulative
// counts, a "+Inf" bucket, and a _count equal to the +Inf bucket.
//
// It is the spot-check parser behind the /metrics tests and the
// textjoind -smoke self-check; a scrape that passes Lint is ingestible
// by a Prometheus scraper.
func Lint(data []byte) error {
	l := &linter{
		types:  make(map[string]string),
		helps:  make(map[string]bool),
		seen:   make(map[string]bool),
		hists:  make(map[string]*histCheck),
		horder: nil,
	}
	for i, line := range strings.Split(string(data), "\n") {
		if err := l.line(line); err != nil {
			return fmt.Errorf("metrics: line %d: %w", i+1, err)
		}
	}
	return l.finish()
}

// histCheck accumulates one histogram series (family + labels minus le)
// across its _bucket/_sum/_count lines.
type histCheck struct {
	where    string
	les      []float64
	cums     []float64
	sum      float64
	count    float64
	hasSum   bool
	hasCount bool
}

type linter struct {
	types  map[string]string
	helps  map[string]bool
	seen   map[string]bool
	hists  map[string]*histCheck
	horder []string
}

func (l *linter) line(line string) error {
	if strings.TrimSpace(line) == "" {
		return nil
	}
	if strings.HasPrefix(line, "#") {
		return l.comment(line)
	}
	return l.sample(line)
}

func (l *linter) comment(line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || fields[0] != "#" {
		return fmt.Errorf("malformed comment %q", line)
	}
	switch fields[1] {
	case "HELP":
		name := fields[2]
		if !validName(name) {
			return fmt.Errorf("HELP for invalid metric name %q", name)
		}
		if l.helps[name] {
			return fmt.Errorf("duplicate HELP for %q", name)
		}
		l.helps[name] = true
	case "TYPE":
		if len(fields) != 4 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		name, typ := fields[2], fields[3]
		if !validName(name) {
			return fmt.Errorf("TYPE for invalid metric name %q", name)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", typ)
		}
		if _, dup := l.types[name]; dup {
			return fmt.Errorf("duplicate TYPE for %q", name)
		}
		l.types[name] = typ
	default:
		// Plain comments are legal and ignored.
	}
	return nil
}

func (l *linter) sample(line string) error {
	name, labels, rest, err := splitSample(line)
	if err != nil {
		return err
	}
	vs := strings.Fields(rest)
	if len(vs) != 1 {
		return fmt.Errorf("want exactly one value (no timestamps) after %q, got %q", name, rest)
	}
	v, err := strconv.ParseFloat(vs[0], 64)
	if err != nil {
		return fmt.Errorf("bad sample value %q: %v", vs[0], err)
	}

	family := name
	suffix := ""
	for _, sfx := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, sfx)
		if base != name && l.types[base] == "histogram" {
			family, suffix = base, sfx
			break
		}
	}
	typ, ok := l.types[family]
	if !ok {
		return fmt.Errorf("sample %q precedes its TYPE line", name)
	}

	key := name + "{" + canonicalLabels(labels) + "}"
	if l.seen[key] {
		return fmt.Errorf("duplicate series %s", key)
	}
	l.seen[key] = true

	switch typ {
	case "counter":
		if v < 0 {
			return fmt.Errorf("counter %s has negative value %g", name, v)
		}
		if !strings.HasSuffix(name, "_total") {
			return fmt.Errorf("counter %s does not end in _total", name)
		}
	case "histogram":
		return l.histSample(family, suffix, labels, v)
	}
	return nil
}

func (l *linter) histSample(family, suffix string, labels map[string]string, v float64) error {
	le, hasLe := labels["le"]
	delete(labels, "le")
	hkey := family + "{" + canonicalLabels(labels) + "}"
	h, ok := l.hists[hkey]
	if !ok {
		h = &histCheck{where: hkey}
		l.hists[hkey] = h
		l.horder = append(l.horder, hkey)
	}
	switch suffix {
	case "_bucket":
		if !hasLe {
			return fmt.Errorf("histogram bucket %s lacks le label", hkey)
		}
		bound, err := parseLe(le)
		if err != nil {
			return fmt.Errorf("histogram %s: %v", hkey, err)
		}
		h.les = append(h.les, bound)
		h.cums = append(h.cums, v)
	case "_sum":
		h.sum, h.hasSum = v, true
	case "_count":
		h.count, h.hasCount = v, true
	default:
		return fmt.Errorf("histogram %s has a plain sample line", hkey)
	}
	return nil
}

// finish runs the whole-series histogram checks.
func (l *linter) finish() error {
	for _, hkey := range l.horder {
		h := l.hists[hkey]
		if len(h.les) == 0 {
			return fmt.Errorf("metrics: histogram %s has no buckets", hkey)
		}
		for i := 1; i < len(h.les); i++ {
			if h.les[i] <= h.les[i-1] {
				return fmt.Errorf("metrics: histogram %s bucket bounds not ascending", hkey)
			}
			if h.cums[i] < h.cums[i-1] {
				return fmt.Errorf("metrics: histogram %s cumulative counts decrease", hkey)
			}
		}
		last := len(h.les) - 1
		if !math.IsInf(h.les[last], 1) {
			return fmt.Errorf("metrics: histogram %s lacks the +Inf bucket", hkey)
		}
		if !h.hasSum || !h.hasCount {
			return fmt.Errorf("metrics: histogram %s lacks _sum or _count", hkey)
		}
		if h.count != h.cums[last] {
			return fmt.Errorf("metrics: histogram %s count %g != +Inf bucket %g", hkey, h.count, h.cums[last])
		}
	}
	return nil
}

// splitSample splits a sample line into name, parsed labels and the
// remainder holding the value.
func splitSample(line string) (string, map[string]string, string, error) {
	nameEnd := strings.IndexAny(line, "{ ")
	if nameEnd <= 0 {
		return "", nil, "", fmt.Errorf("malformed sample line %q", line)
	}
	name := line[:nameEnd]
	if !validName(name) {
		return "", nil, "", fmt.Errorf("invalid metric name %q", name)
	}
	labels := make(map[string]string)
	rest := line[nameEnd:]
	if rest[0] == '{' {
		end := -1
		inQuote := false
		for i := 1; i < len(rest); i++ {
			switch {
			case inQuote && rest[i] == '\\':
				i++
			case rest[i] == '"':
				inQuote = !inQuote
			case !inQuote && rest[i] == '}':
				end = i
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return "", nil, "", fmt.Errorf("unterminated label set in %q", line)
		}
		if err := parseLabels(rest[1:end], labels); err != nil {
			return "", nil, "", err
		}
		rest = rest[end+1:]
	}
	return name, labels, rest, nil
}

// parseLabels parses `k="v",k2="v2"` into dst.
func parseLabels(s string, dst map[string]string) error {
	for len(s) > 0 {
		eq := strings.Index(s, "=")
		if eq <= 0 {
			return fmt.Errorf("malformed label in %q", s)
		}
		key := s[:eq]
		if !validLabelName(key) {
			return fmt.Errorf("invalid label name %q", key)
		}
		if _, dup := dst[key]; dup {
			return fmt.Errorf("duplicate label %q", key)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return fmt.Errorf("unquoted label value for %q", key)
		}
		val := strings.Builder{}
		i := 1
		closed := false
		for ; i < len(s); i++ {
			c := s[i]
			if c == '\\' {
				if i+1 >= len(s) {
					return fmt.Errorf("dangling escape in label %q", key)
				}
				i++
				switch s[i] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return fmt.Errorf("bad escape \\%c in label %q", s[i], key)
				}
				continue
			}
			if c == '"' {
				closed = true
				break
			}
			val.WriteByte(c)
		}
		if !closed {
			return fmt.Errorf("unterminated label value for %q", key)
		}
		dst[key] = val.String()
		s = s[i+1:]
		if len(s) > 0 {
			if s[0] != ',' {
				return fmt.Errorf("expected ',' between labels, got %q", s)
			}
			s = s[1:]
		}
	}
	return nil
}

// canonicalLabels renders labels sorted by key for series identity.
func canonicalLabels(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + labels[k]
	}
	return strings.Join(parts, ",")
}

func parseLe(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad le bound %q", s)
	}
	return v, nil
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i, r := range s {
		ok := r == '_' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}
