// Package accum provides the flat similarity accumulators behind the
// paper's accumulating join algorithms (HVNL §4.2, VVM §4.3).
//
// Those algorithms spend essentially all of their CPU time adding u·v
// products into an intermediate-similarity store. Document numbers are
// contiguous (the collection builder assigns 0..N-1), and VVM processes a
// sorted range of outer ids per pass, so the store never needs a general
// hash map:
//
//   - Flat is the per-outer-document accumulator of HVNL: a []float64
//     indexed by inner document number with a touched list, so reset and
//     iteration cost O(non-zero) — preserving the paper's "only non-zero
//     similarities are stored" accounting — while each accumulation is a
//     single indexed add.
//   - Dense is the per-pass accumulator of VVM when the rows×cols matrix
//     fits the pass's memory budget: one contiguous block, no per-add
//     branching at all.
//   - Table is the fallback when it does not: a power-of-two
//     open-addressing table keyed by (row, inner), still one cache line
//     per accumulation in the common hit case.
//
// All three accumulate exactly like a map[key]float64 fed the same adds in
// the same order: per-key float sums are bit-identical, which is what keeps
// the joins byte-identical to their map-backed originals.
package accum

import "math"

// Flat accumulates values against a contiguous id space 0..n-1, tracking
// which ids were touched so that iteration and reset cost O(touched)
// instead of O(n). It is HVNL's per-outer-document accumulator.
type Flat struct {
	vals    []float64
	seen    []bool
	touched []uint32
}

// NewFlat returns a Flat over ids 0..n-1.
func NewFlat(n int) *Flat {
	return &Flat{vals: make([]float64, n), seen: make([]bool, n)}
}

// Add accumulates v into id.
func (f *Flat) Add(id uint32, v float64) {
	if !f.seen[id] {
		f.seen[id] = true
		f.touched = append(f.touched, id)
	}
	f.vals[id] += v
}

// Len returns the number of distinct ids touched since the last Reset.
func (f *Flat) Len() int { return len(f.touched) }

// ForEach calls fn for every touched id, in first-touch order.
func (f *Flat) ForEach(fn func(id uint32, v float64)) {
	for _, id := range f.touched {
		fn(id, f.vals[id])
	}
}

// Kind names the store for telemetry labels.
func (f *Flat) Kind() string { return "flat" }

// Reset clears only the touched slots, readying the accumulator for the
// next outer document.
func (f *Flat) Reset() {
	for _, id := range f.touched {
		f.vals[id] = 0
		f.seen[id] = false
	}
	f.touched = f.touched[:0]
}

// Accumulator is the per-pass similarity store of VVM: values accumulate
// against (row, inner) where row indexes the pass's outer range and inner
// is an inner document number 0..cols-1.
//
// Implementations assume non-negative adds (term weights and factors are
// non-negative), so a pair is non-zero iff it was touched.
type Accumulator interface {
	// Add accumulates v into (row, inner).
	Add(row int, inner uint32, v float64)
	// ForEach calls fn for every non-zero pair. Iteration order is
	// unspecified; join results do not depend on it because each pair is
	// a distinct top-λ candidate.
	ForEach(fn func(row int, inner uint32, v float64))
	// Len returns the number of non-zero pairs.
	Len() int
	// Bytes returns the resident size of the store, for
	// Stats.PeakMemoryBytes.
	Bytes() int64
	// Kind names the store ("dense" or "table") so telemetry can label
	// which regime a pass ran in.
	Kind() string
}

// UseDense reports whether a dense rows×cols float64 matrix fits within
// budgetBytes. This is the paper's regime split restated in bytes: the
// sparse estimate SM = 4·δ·N1·N2 already sized the pass, so a pass whose
// full matrix fits the same budget can drop the sparse indirection
// entirely.
func UseDense(rows, cols int, budgetBytes int64) bool {
	cells := int64(rows) * int64(cols)
	return cells <= budgetBytes/8
}

// New returns the accumulator for one VVM pass: Dense when the full matrix
// fits budgetBytes, Table otherwise.
func New(rows, cols int, budgetBytes int64) Accumulator {
	if UseDense(rows, cols, budgetBytes) {
		return NewDense(rows, cols)
	}
	return NewTable(0)
}

// Dense is a rows×cols matrix accumulator. Adds are unconditional indexed
// adds; iteration scans the matrix and skips zeros (values are sums of
// non-negative products, so zero means untouched).
type Dense struct {
	vals []float64
	cols int
}

// NewDense returns a zeroed rows×cols matrix.
func NewDense(rows, cols int) *Dense {
	return &Dense{vals: make([]float64, rows*cols), cols: cols}
}

// Add accumulates v into (row, inner).
func (d *Dense) Add(row int, inner uint32, v float64) {
	d.vals[row*d.cols+int(inner)] += v
}

// ForEach calls fn for every non-zero pair in row-major order.
func (d *Dense) ForEach(fn func(row int, inner uint32, v float64)) {
	for i, v := range d.vals {
		if v != 0 {
			fn(i/d.cols, uint32(i%d.cols), v)
		}
	}
}

// Len returns the number of non-zero cells.
func (d *Dense) Len() int {
	n := 0
	for _, v := range d.vals {
		if v != 0 {
			n++
		}
	}
	return n
}

// Bytes returns the matrix size.
func (d *Dense) Bytes() int64 { return int64(len(d.vals)) * 8 }

// Kind names the store for telemetry labels.
func (d *Dense) Kind() string { return "dense" }

// Table is a power-of-two open-addressing accumulator keyed by
// (row, inner). Linear probing, fibonacci hashing, grown at 3/4 load.
type Table struct {
	keys  []uint64
	vals  []float64
	shift uint // 64 - log2(len(keys))
	n     int
}

// tableEmpty marks a free slot. It cannot collide with a real key: rows
// and inner numbers are bounded by codec.MaxNumber < 2^32-1.
const tableEmpty = math.MaxUint64

const tableMinSize = 16

// NewTable returns a table pre-sized for hint pairs (0 for the default).
func NewTable(hint int) *Table {
	size := tableMinSize
	for size*3/4 < hint {
		size *= 2
	}
	t := &Table{}
	t.init(size)
	return t
}

func (t *Table) init(size int) {
	t.keys = make([]uint64, size)
	for i := range t.keys {
		t.keys[i] = tableEmpty
	}
	t.vals = make([]float64, size)
	t.shift = 64
	for s := size; s > 1; s >>= 1 {
		t.shift--
	}
}

// slot returns the starting probe index for key.
func (t *Table) slot(key uint64) int {
	return int((key * 0x9E3779B97F4A7C15) >> t.shift)
}

// Add accumulates v into (row, inner).
func (t *Table) Add(row int, inner uint32, v float64) {
	key := uint64(row)<<32 | uint64(inner)
	mask := len(t.keys) - 1
	i := t.slot(key)
	for {
		switch t.keys[i] {
		case key:
			t.vals[i] += v
			return
		case tableEmpty:
			if t.n >= len(t.keys)*3/4 {
				t.grow()
				t.Add(row, inner, v)
				return
			}
			t.keys[i] = key
			t.vals[i] = v
			t.n++
			return
		}
		i = (i + 1) & mask
	}
}

func (t *Table) grow() {
	oldKeys, oldVals := t.keys, t.vals
	t.init(len(oldKeys) * 2)
	mask := len(t.keys) - 1
	for j, key := range oldKeys {
		if key == tableEmpty {
			continue
		}
		i := t.slot(key)
		for t.keys[i] != tableEmpty {
			i = (i + 1) & mask
		}
		t.keys[i] = key
		t.vals[i] = oldVals[j]
	}
}

// ForEach calls fn for every stored pair, in slot order.
func (t *Table) ForEach(fn func(row int, inner uint32, v float64)) {
	for i, key := range t.keys {
		if key != tableEmpty {
			fn(int(key>>32), uint32(key), t.vals[i])
		}
	}
}

// Len returns the number of stored pairs.
func (t *Table) Len() int { return t.n }

// Bytes returns the size of the key and value arrays.
func (t *Table) Bytes() int64 { return int64(len(t.keys)) * 16 }

// Kind names the store for telemetry labels.
func (t *Table) Kind() string { return "table" }
