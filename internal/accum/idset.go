package accum

import (
	"math/bits"
	"slices"
)

// IDSet answers membership and rank queries over a sorted, duplicate-free
// id slice — one VVM pass's outer range. The joins probe it once per
// outer i-cell on the merge-scan hot path, so the common cases are O(1):
//
//   - a full-collection pass is a contiguous run lo..hi, answered by a
//     range check and a subtraction;
//   - a selection (Subset) pass uses an offset bitmap with per-word rank
//     prefixes when its id span is modest;
//   - a pathologically scattered selection falls back to binary search.
//
// The set does not retain the slice; it must stay unmodified only during
// construction. IDSet is immutable afterwards and safe for concurrent
// readers.
type IDSet struct {
	n  int
	lo uint32
	hi uint32
	// contiguous: rank = id - lo.
	contiguous bool
	// bitmap path: bit (id - lo) set iff id is a member; ranks[w] is the
	// number of members before word w.
	words []uint64
	ranks []int32
	// fallback path: binary search over the ids themselves.
	ids []uint32
}

// bitmapMaxSpanFactor bounds the bitmap's size at 8 bytes per member
// (64 span bits), past which binary search is the better trade.
const bitmapMaxSpanFactor = 64

// NewIDSet builds an IDSet over ids, which must be sorted ascending with
// no duplicates (as Subset.IDs and the full-collection ranges guarantee).
func NewIDSet(ids []uint32) *IDSet {
	s := &IDSet{n: len(ids)}
	if len(ids) == 0 {
		return s
	}
	s.lo, s.hi = ids[0], ids[len(ids)-1]
	span := uint64(s.hi-s.lo) + 1
	if span == uint64(len(ids)) {
		s.contiguous = true
		return s
	}
	if span <= uint64(len(ids))*bitmapMaxSpanFactor {
		s.words = make([]uint64, (span+63)/64)
		for _, id := range ids {
			off := id - s.lo
			s.words[off/64] |= 1 << (off % 64)
		}
		s.ranks = make([]int32, len(s.words))
		var rank int32
		for w, word := range s.words {
			s.ranks[w] = rank
			rank += int32(bits.OnesCount64(word))
		}
		return s
	}
	s.ids = slices.Clone(ids)
	return s
}

// Len returns the number of members.
func (s *IDSet) Len() int { return s.n }

// Rank returns id's position within the sorted member list, and whether id
// is a member.
func (s *IDSet) Rank(id uint32) (int, bool) {
	if s.n == 0 || id < s.lo || id > s.hi {
		return 0, false
	}
	if s.contiguous {
		return int(id - s.lo), true
	}
	if s.words != nil {
		off := id - s.lo
		w, b := off/64, off%64
		if s.words[w]&(1<<b) == 0 {
			return 0, false
		}
		return int(s.ranks[w]) + bits.OnesCount64(s.words[w]&(1<<b-1)), true
	}
	i, ok := slices.BinarySearch(s.ids, id)
	return i, ok
}

// Contains reports membership.
func (s *IDSet) Contains(id uint32) bool {
	_, ok := s.Rank(id)
	return ok
}
