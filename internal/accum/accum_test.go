package accum

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// mapRef replays adds into the map semantics the join algorithms used
// before this package existed.
type mapRef map[uint64]float64

func (m mapRef) add(row int, inner uint32, v float64) {
	m[uint64(row)<<32|uint64(inner)] += v
}

// collect drains an Accumulator into comparable form.
func collect(a Accumulator) map[uint64]float64 {
	out := make(map[uint64]float64)
	a.ForEach(func(row int, inner uint32, v float64) {
		out[uint64(row)<<32|uint64(inner)] = v
	})
	return out
}

// sameEntries compares accumulator contents against the map reference,
// ignoring entries the reference holds at exactly zero (a map keeps a key
// accumulated back to zero; the flat stores treat zero as absent — the
// joins never offer either as a match).
func sameEntries(t *testing.T, name string, got, want map[uint64]float64) {
	t.Helper()
	for k, v := range want {
		if v == 0 {
			continue
		}
		if got[k] != v {
			t.Fatalf("%s: key %d = %v, want %v", name, k, got[k], v)
		}
	}
	for k, v := range got {
		if want[k] != v {
			t.Fatalf("%s: extra key %d = %v (want %v)", name, k, v, want[k])
		}
	}
}

// TestAccumulatorEquivalence drives Dense and Table with identical random
// add sequences and checks both match the map semantics bit-for-bit —
// including per-key float sums, which must accumulate in arrival order.
func TestAccumulatorEquivalence(t *testing.T) {
	check := func(seed int64, rows8, cols8 uint8) bool {
		rows := int(rows8%30) + 1
		cols := int(cols8%50) + 1
		r := rand.New(rand.NewSource(seed))
		dense := NewDense(rows, cols)
		table := NewTable(0)
		ref := make(mapRef)
		for i, n := 0, r.Intn(500); i < n; i++ {
			row := r.Intn(rows)
			inner := uint32(r.Intn(cols))
			v := float64(r.Intn(50)+1) * float64(r.Intn(50)+1) * (r.Float64() + 0.5)
			dense.Add(row, inner, v)
			table.Add(row, inner, v)
			ref.add(row, inner, v)
		}
		sameEntries(t, "dense", collect(dense), map[uint64]float64(ref))
		sameEntries(t, "table", collect(table), map[uint64]float64(ref))
		if dense.Len() != len(ref) || table.Len() != len(ref) {
			t.Fatalf("len: dense %d table %d want %d", dense.Len(), table.Len(), len(ref))
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestFlatEquivalence checks the HVNL per-document accumulator against map
// semantics across Reset cycles (one cycle per outer document).
func TestFlatEquivalence(t *testing.T) {
	check := func(seed int64, n8 uint8) bool {
		n := int(n8%60) + 1
		r := rand.New(rand.NewSource(seed))
		f := NewFlat(n)
		for cycle := 0; cycle < 3; cycle++ {
			ref := make(map[uint32]float64)
			for i, adds := 0, r.Intn(200); i < adds; i++ {
				id := uint32(r.Intn(n))
				v := float64(r.Intn(100)+1) * r.Float64()
				f.Add(id, v)
				ref[id] += v
			}
			got := make(map[uint32]float64)
			f.ForEach(func(id uint32, v float64) { got[id] = v })
			if len(got) != len(ref) || f.Len() != len(ref) {
				t.Fatalf("cycle %d: %d touched, want %d", cycle, f.Len(), len(ref))
			}
			for id, v := range ref {
				if got[id] != v {
					t.Fatalf("cycle %d: id %d = %v, want %v", cycle, id, got[id], v)
				}
			}
			f.Reset()
			if f.Len() != 0 {
				t.Fatal("reset left touched entries")
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFlatFirstTouchOrder(t *testing.T) {
	f := NewFlat(10)
	f.Add(7, 1)
	f.Add(2, 1)
	f.Add(7, 2)
	f.Add(0, 5)
	var order []uint32
	f.ForEach(func(id uint32, v float64) { order = append(order, id) })
	want := []uint32{7, 2, 0}
	if len(order) != len(want) {
		t.Fatalf("order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
	if f.vals[7] != 3 {
		t.Fatalf("vals[7] = %v, want 3", f.vals[7])
	}
}

func TestTableGrowth(t *testing.T) {
	table := NewTable(0)
	ref := make(mapRef)
	// Push far past several growth thresholds, including key 0.
	for row := 0; row < 40; row++ {
		for inner := uint32(0); inner < 40; inner++ {
			v := float64(row*40) + float64(inner) + 0.5
			table.Add(row, inner, v)
			ref.add(row, inner, v)
		}
	}
	sameEntries(t, "table", collect(table), map[uint64]float64(ref))
	if table.Len() != 1600 {
		t.Fatalf("len = %d, want 1600", table.Len())
	}
	if table.Bytes() < 1600*16 {
		t.Fatalf("bytes = %d, too small for %d entries", table.Bytes(), table.Len())
	}
}

func TestNewChoosesByBudget(t *testing.T) {
	if _, ok := New(10, 10, 800).(*Dense); !ok {
		t.Error("10x10 at 800 bytes: want Dense")
	}
	if _, ok := New(10, 10, 799).(*Table); !ok {
		t.Error("10x10 at 799 bytes: want Table")
	}
	if !UseDense(0, 5, 1) {
		t.Error("zero rows should always fit")
	}
	// Large dimensions must not overflow the byte computation.
	if UseDense(1<<24, 1<<24, 1<<40) {
		t.Error("2^48 cells in 2^40 bytes: want sparse")
	}
}

func TestIDSetContiguous(t *testing.T) {
	ids := []uint32{5, 6, 7, 8, 9}
	s := NewIDSet(ids)
	if !s.contiguous {
		t.Fatal("want contiguous representation")
	}
	checkIDSet(t, s, ids)
}

func TestIDSetBitmap(t *testing.T) {
	ids := []uint32{3, 4, 9, 64, 65, 130, 200}
	s := NewIDSet(ids)
	if s.words == nil {
		t.Fatal("want bitmap representation")
	}
	checkIDSet(t, s, ids)
}

func TestIDSetSparseFallback(t *testing.T) {
	ids := []uint32{1, 1000000, 9000000}
	s := NewIDSet(ids)
	if s.ids == nil {
		t.Fatal("want binary-search representation")
	}
	checkIDSet(t, s, ids)
}

func TestIDSetEmpty(t *testing.T) {
	s := NewIDSet(nil)
	if s.Len() != 0 || s.Contains(0) {
		t.Fatal("empty set misbehaves")
	}
}

// checkIDSet verifies Rank/Contains over the members, both neighbors of
// every member, and the extremes.
func checkIDSet(t *testing.T, s *IDSet, ids []uint32) {
	t.Helper()
	if s.Len() != len(ids) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(ids))
	}
	member := make(map[uint32]int, len(ids))
	for rank, id := range ids {
		member[id] = rank
	}
	probe := func(id uint32) {
		rank, ok := s.Rank(id)
		wantRank, wantOK := member[id]
		if ok != wantOK || (ok && rank != wantRank) {
			t.Fatalf("Rank(%d) = %d,%v want %d,%v", id, rank, ok, wantRank, wantOK)
		}
	}
	for _, id := range ids {
		probe(id)
		if id > 0 {
			probe(id - 1)
		}
		probe(id + 1)
	}
	probe(0)
	probe(^uint32(0))
}

// TestIDSetQuick cross-checks all three representations against a map on
// random id sets.
func TestIDSetQuick(t *testing.T) {
	check := func(seed int64, span16 uint16, n8 uint8) bool {
		r := rand.New(rand.NewSource(seed))
		span := int(span16%5000) + 1
		n := int(n8)%span + 1
		picked := make(map[uint32]bool, n)
		for len(picked) < n {
			picked[uint32(r.Intn(span))] = true
		}
		ids := make([]uint32, 0, n)
		for id := range picked {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		s := NewIDSet(ids)
		for probe := 0; probe < 100; probe++ {
			id := uint32(r.Intn(span + 10))
			rank, ok := s.Rank(id)
			if ok != picked[id] {
				t.Fatalf("Contains(%d) = %v, want %v", id, ok, picked[id])
			}
			if ok && ids[rank] != id {
				t.Fatalf("Rank(%d) = %d, but ids[%d] = %d", id, rank, rank, ids[rank])
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
