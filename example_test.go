package textjoin_test

import (
	"fmt"
	"log"

	"textjoin"
)

// ExampleJoin shows the minimal path: two tiny collections, one inverted
// file, one algorithm.
func ExampleJoin() {
	ws := textjoin.NewWorkspace()
	c1, err := ws.NewCollection("c1", []*textjoin.Document{
		textjoin.NewDocument(0, map[uint32]int{1: 2, 5: 1}),
		textjoin.NewDocument(1, map[uint32]int{2: 1}),
	})
	if err != nil {
		log.Fatal(err)
	}
	c2, err := ws.NewCollection("c2", []*textjoin.Document{
		textjoin.NewDocument(0, map[uint32]int{1: 3}),
	})
	if err != nil {
		log.Fatal(err)
	}
	results, _, err := textjoin.Join(textjoin.HHNL,
		textjoin.Inputs{Outer: c2, Inner: c1},
		textjoin.Options{Lambda: 1, MemoryPages: 100})
	if err != nil {
		log.Fatal(err)
	}
	m := results[0].Matches[0]
	fmt.Printf("C2 doc %d best match: C1 doc %d (similarity %.0f)\n", results[0].Outer, m.Doc, m.Sim)
	// Output: C2 doc 0 best match: C1 doc 0 (similarity 6)
}

// ExampleJoinIntegrated lets the paper's integrated algorithm pick the
// cheapest strategy from the collection statistics.
func ExampleJoinIntegrated() {
	ws := textjoin.NewWorkspace()
	docs := func(n int, shift uint32) []*textjoin.Document {
		out := make([]*textjoin.Document, n)
		for i := range out {
			out[i] = textjoin.NewDocument(uint32(i), map[uint32]int{
				uint32(i)%7 + shift: 1 + i%3,
				uint32(i)%5 + 10:    1,
			})
		}
		return out
	}
	c1, err := ws.NewCollection("c1", docs(12, 0))
	if err != nil {
		log.Fatal(err)
	}
	c2, err := ws.NewCollection("c2", docs(8, 2))
	if err != nil {
		log.Fatal(err)
	}
	inv1, err := ws.BuildInvertedFile(c1)
	if err != nil {
		log.Fatal(err)
	}
	inv2, err := ws.BuildInvertedFile(c2)
	if err != nil {
		log.Fatal(err)
	}
	results, _, dec, err := textjoin.JoinIntegrated(
		textjoin.Inputs{Outer: c2, Inner: c1, InnerInv: inv1, OuterInv: inv2},
		textjoin.Options{Lambda: 2, MemoryPages: 100})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d result rows from %v (3 candidate algorithms estimated: %d)\n",
		len(results), dec.Chosen, len(dec.Estimates))
	// Output: 8 result rows from HHNL (3 candidate algorithms estimated: 3)
}

// ExampleNewBatch joins ad-hoc queries — never stored, never indexed —
// against a collection.
func ExampleNewBatch() {
	ws := textjoin.NewWorkspace()
	coll, err := ws.NewCollection("articles", []*textjoin.Document{
		textjoin.NewDocument(0, map[uint32]int{100: 2, 101: 1}),
		textjoin.NewDocument(1, map[uint32]int{200: 1}),
	})
	if err != nil {
		log.Fatal(err)
	}
	inv, err := ws.BuildInvertedFile(coll)
	if err != nil {
		log.Fatal(err)
	}
	batch, err := textjoin.NewBatch("queries", []*textjoin.Document{
		textjoin.NewDocument(42, map[uint32]int{100: 1}),
	})
	if err != nil {
		log.Fatal(err)
	}
	results, _, err := textjoin.Join(textjoin.HVNL,
		textjoin.Inputs{Outer: batch, Inner: coll, InnerInv: inv},
		textjoin.Options{Lambda: 1, MemoryPages: 100})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query %d matched article %d\n", results[0].Outer, results[0].Matches[0].Doc)
	// Output: query 42 matched article 0
}

// ExampleEstimateCosts evaluates the paper's Section 5 formulas at the
// WSJ self-join base configuration.
func ExampleEstimateCosts() {
	wsj := textjoin.Profiles()[0].Stats()
	ests := textjoin.EstimateCosts(
		textjoin.CostInput{C1: wsj, C2: wsj},
		textjoin.System{B: 10000, P: 4096, Alpha: 5},
		textjoin.QueryParams{Lambda: 20, Delta: 0.1},
	)
	for _, e := range ests {
		fmt.Printf("%v seq=%.0f\n", e.Algorithm, e.Seq)
	}
	// Output:
	// HHNL seq=237921
	// HVNL seq=90637206
	// VVM seq=7613471
}
