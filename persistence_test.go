package textjoin

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// TestPersistenceRoundTrip builds collections and inverted files, saves
// the workspace to a real file, restores it in a "new process" and
// verifies the join results are identical.
func TestPersistenceRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	ws := NewWorkspace(WithPageSize(512), WithAlpha(5))
	c1, err := ws.NewCollection("c1", randomDocuments(r, 30, 60, 12))
	if err != nil {
		t.Fatal(err)
	}
	c2, err := ws.NewCollection("c2", randomDocuments(r, 25, 60, 12))
	if err != nil {
		t.Fatal(err)
	}
	inv1, err := ws.BuildInvertedFile(c1)
	if err != nil {
		t.Fatal(err)
	}
	inv2, err := ws.BuildInvertedFile(c2)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Lambda: 4, MemoryPages: 100}
	want, _, err := Join(VVM, Inputs{Outer: c2, Inner: c1, InnerInv: inv1, OuterInv: inv2}, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Save to a real file on the OS filesystem.
	path := filepath.Join(t.TempDir(), "workspace.tjdk")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ws.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Restore and re-attach.
	g, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	restored, err := LoadWorkspace(g)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Disk().PageSize() != 512 || restored.Disk().Alpha() != 5 {
		t.Errorf("disk params: %d, %v", restored.Disk().PageSize(), restored.Disk().Alpha())
	}
	rc1, err := restored.OpenCollection("c1", 30)
	if err != nil {
		t.Fatal(err)
	}
	rc2, err := restored.OpenCollection("c2", 25)
	if err != nil {
		t.Fatal(err)
	}
	rinv1, err := restored.OpenInvertedFile(rc1)
	if err != nil {
		t.Fatal(err)
	}
	rinv2, err := restored.OpenInvertedFile(rc2)
	if err != nil {
		t.Fatal(err)
	}
	if rc1.Stats() != c1.Stats() || rc2.Stats() != c2.Stats() {
		t.Errorf("collection stats changed across persistence")
	}

	for _, alg := range []Algorithm{HHNL, HVNL, VVM} {
		got, _, err := Join(alg, Inputs{Outer: rc2, Inner: rc1, InnerInv: rinv1, OuterInv: rinv2}, opts)
		if err != nil {
			t.Fatalf("%v after restore: %v", alg, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%v: %d rows vs %d", alg, len(got), len(want))
		}
		for i := range want {
			if got[i].Outer != want[i].Outer || len(got[i].Matches) != len(want[i].Matches) {
				t.Fatalf("%v row %d differs", alg, i)
			}
			for j := range want[i].Matches {
				if got[i].Matches[j].Doc != want[i].Matches[j].Doc {
					t.Fatalf("%v row %d match %d differs", alg, i, j)
				}
			}
		}
	}
}

func TestLoadWorkspaceBadData(t *testing.T) {
	if _, err := LoadWorkspace(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Error("bad snapshot: want error")
	}
}

func TestOpenCollectionMissing(t *testing.T) {
	ws := NewWorkspace()
	if _, err := ws.OpenCollection("ghost", 1); err == nil {
		t.Error("missing collection: want error")
	}
}
