// Package textjoin is a library for processing joins between textual
// attributes, reproducing Meng, Yu, Wang and Rishe, "Performance Analysis
// of Several Algorithms for Processing Joins between Textual Attributes"
// (ICDE 1996).
//
// A textual join "C1 SIMILAR_TO(λ) C2" pairs each document of collection
// C2 with the λ documents of collection C1 most similar to it. The
// library provides:
//
//   - the paper's three join algorithms — HHNL (nested loop over raw
//     documents), HVNL (documents probing an inverted file through its
//     B+tree with a frequency-aware entry cache) and VVM (a merge scan of
//     two inverted files with memory-partitioned accumulation) — over a
//     byte-accurate simulated paged store that accounts sequential and
//     random page I/O exactly as the paper's cost model does;
//   - every cost formula of the paper's Section 5 and the integrated
//     algorithm that picks the cheapest strategy from collection,
//     system and query statistics;
//   - an extended-SQL layer for queries like
//     "SELECT ... WHERE A.Resume SIMILAR_TO(20) P.Job_descr" with
//     selection push-down;
//   - synthetic corpus generation matching the paper's WSJ/FR/DOE
//     statistics, and the complete Section 6 simulation study.
//
// # Quick start
//
//	ws := textjoin.NewWorkspace()
//	c1, _ := ws.NewCollection("resumes", resumeDocs)
//	c2, _ := ws.NewCollection("jobs", jobDocs)
//	inv1, _ := ws.BuildInvertedFile(c1)
//	results, stats, _ := textjoin.Join(textjoin.HVNL,
//	    textjoin.Inputs{Outer: c2, Inner: c1, InnerInv: inv1},
//	    textjoin.Options{Lambda: 5, MemoryPages: 1000})
//
// See the examples directory for complete programs.
package textjoin

import (
	"io"
	"net/http"
	"time"

	"textjoin/internal/cluster"
	"textjoin/internal/collection"
	"textjoin/internal/core"
	"textjoin/internal/corpus"
	"textjoin/internal/costmodel"
	"textjoin/internal/document"
	"textjoin/internal/entrycache"
	"textjoin/internal/invfile"
	"textjoin/internal/iosim"
	"textjoin/internal/lsh"
	"textjoin/internal/metrics"
	"textjoin/internal/query"
	"textjoin/internal/relation"
	"textjoin/internal/reqtrace"
	"textjoin/internal/signature"
	"textjoin/internal/simulate"
	"textjoin/internal/slo"
	"textjoin/internal/stats"
	"textjoin/internal/telemetry"
	"textjoin/internal/termmap"
	"textjoin/internal/tokenize"
)

// Core join API.
type (
	// Algorithm identifies one of the paper's three join algorithms.
	Algorithm = core.Algorithm
	// Inputs bundles the representations a join consumes.
	Inputs = core.Inputs
	// Options configures a join run (λ, memory budget, weighting, ...).
	Options = core.Options
	// Result holds one outer document's λ best matches.
	Result = core.Result
	// Match is one (inner document, similarity) pair.
	Match = core.Match
	// JoinStats reports a join's I/O and work counters.
	JoinStats = core.Stats
	// Decision explains an integrated-algorithm choice.
	Decision = core.Decision
)

// The three exact algorithms, plus the approximate MinHash join.
const (
	HHNL = core.HHNL
	HVNL = core.HVNL
	VVM  = core.VVM
	LSH  = core.LSH
)

// Storage and document model.
type (
	// Disk is the simulated paged store with sequential/random I/O
	// accounting.
	Disk = iosim.Disk
	// IOStats are page-read/write counters with the α cost model.
	IOStats = iosim.Stats
	// Document is a term vector.
	Document = document.Document
	// Cell is one (term, occurrences) vector component.
	Cell = document.Cell
	// Weighting selects the similarity function.
	Weighting = document.Weighting
	// Collection is an immutable on-disk document collection.
	Collection = collection.Collection
	// Subset is a selection over a collection, read with random I/O.
	Subset = collection.Subset
	// Reader is a document source: a Collection, a Subset or a Batch.
	Reader = collection.Reader
	// Batch is a memory-resident set of query documents joined against
	// a stored collection (the paper's batch-query scenario; VVM is
	// inapplicable because a batch has no inverted file).
	Batch = collection.Batch
	// InvertedFile is a collection's inverted file with its B+tree.
	InvertedFile = invfile.InvertedFile
	// CachePolicy selects HVNL's entry replacement policy.
	CachePolicy = entrycache.Policy
)

// Similarity weightings.
const (
	// RawTF is the paper's base similarity: dot product of occurrence
	// counts.
	RawTF = document.RawTF
	// Cosine normalizes by the pre-computed document norms.
	Cosine = document.Cosine
	// TFIDF weights each term by its squared inverse document
	// frequency.
	TFIDF = document.TFIDF
)

// HVNL cache replacement policies.
const (
	// MinOuterDF is the paper's policy: evict the entry whose term is
	// least frequent in the outer collection.
	MinOuterDF = entrycache.MinOuterDF
	// LRU is the ablation baseline.
	LRU = entrycache.LRU
)

// Cost model.
type (
	// CollectionStats are the statistics (N, K, T) a cost estimate
	// consumes.
	CollectionStats = costmodel.Collection
	// System carries B (memory pages), P (page size) and α.
	System = costmodel.System
	// QueryParams carries λ and δ.
	QueryParams = costmodel.Query
	// CostInput describes one join for estimation.
	CostInput = costmodel.Input
	// Estimate is one algorithm's estimated sequential and worst-case
	// random cost.
	Estimate = costmodel.Estimate
)

// Corpora and simulation.
type (
	// Profile describes a synthetic collection's target statistics.
	Profile = corpus.Profile
	// SimTable is one regenerated simulation table.
	SimTable = simulate.Table
	// Finding is one of the paper's summary findings re-derived.
	Finding = simulate.Finding
)

// Query layer.
type (
	// Catalog binds relations and textual attributes.
	Catalog = query.Catalog
	// Engine executes extended-SQL queries.
	Engine = query.Engine
	// TextBinding attaches a collection (and inverted file) to a text
	// attribute.
	TextBinding = query.TextBinding
	// QueryOptions configures query execution.
	QueryOptions = query.Options
	// ResultSet is a query's rows plus the planner's explanation.
	ResultSet = query.ResultSet
	// Relation is an in-memory table with text attributes.
	Relation = relation.Relation
	// Column describes one relation attribute.
	Column = relation.Column
	// Value is one attribute value.
	Value = relation.Value
	// Dictionary is the standard term-number mapping of Section 3.
	Dictionary = termmap.Dictionary
	// LocalMapping translates a local IR system's term numbers to the
	// standard numbers.
	LocalMapping = termmap.LocalMapping
	// Tokenizer converts raw text into term vectors.
	Tokenizer = tokenize.Tokenizer
)

// Telemetry layer.
type (
	// Telemetry is the execution instrumentation collector: per-phase
	// spans, I/O and cache counters, histograms, a bounded trace ring.
	// A nil *Telemetry disables collection everywhere it is passed.
	Telemetry = telemetry.Collector
	// TelemetryOption configures a collector (trace capacity, clock).
	TelemetryOption = telemetry.Option
	// TelemetrySnapshot is a point-in-time copy of a collector's state.
	TelemetrySnapshot = telemetry.Snapshot
	// TelemetrySink renders a snapshot as text or JSON.
	TelemetrySink = telemetry.Sink
)

// NewTelemetry creates an enabled collector. Attach it to a join via
// Options.Telemetry (or QueryOptions.Telemetry) and to the storage layer
// via Workspace.SetTelemetry; read it back with its Snapshot method and
// a TelemetrySink.
func NewTelemetry(opts ...TelemetryOption) *Telemetry { return telemetry.New(opts...) }

// TelemetrySinkFor maps "text" or "json" to a sink.
func TelemetrySinkFor(mode string) (TelemetrySink, error) { return telemetry.SinkFor(mode) }

// MetricsExporter serves a collector as a Prometheus text exposition,
// computing per-second rates between successive scrapes.
type MetricsExporter = metrics.Exporter

// NewMetricsExporter creates a /metrics handler over a collector (nil is
// allowed and serves an empty exposition). Options extend the scrape —
// WithSLOGauges adds the SLO engine's families.
func NewMetricsExporter(t *Telemetry, opts ...MetricsExporterOption) *MetricsExporter {
	return metrics.NewExporter(t, opts...)
}

// EncodeMetrics renders one snapshot as Prometheus exposition text, with
// the stable textjoin_* naming scheme (see DESIGN.md §10).
func EncodeMetrics(w io.Writer, s *TelemetrySnapshot) error { return metrics.Encode(w, s) }

// TraceStreamHandler serves a collector's trace ring as JSON Lines (one
// telemetry entry per line); the since query parameter tails entries
// with larger sequence numbers.
func TraceStreamHandler(t *Telemetry) http.Handler { return metrics.TraceHandler(t) }

// Request tracing and SLO layer.
type (
	// RequestTracer mints request-scoped traces with seeded-deterministic
	// IDs. A nil *RequestTracer disables tracing (nil spans, no-ops).
	RequestTracer = reqtrace.Tracer
	// RequestSpan is one timed operation in a request's trace tree.
	// Thread it through Options.Trace to hang the join phases under it.
	RequestSpan = reqtrace.Span
	// RequestTraceData is the wire form of one finished request trace.
	RequestTraceData = reqtrace.TraceData
	// FlightRecorder keeps the N slowest and N most recent finished
	// request traces for /debug/requests.
	FlightRecorder = reqtrace.Recorder
	// SLOEngine evaluates availability and latency objectives over
	// rolling windows of telemetry snapshots.
	SLOEngine = slo.Engine
	// SLOObjective is one availability or latency objective.
	SLOObjective = slo.Objective
	// MetricsExporterOption configures a MetricsExporter.
	MetricsExporterOption = metrics.ExporterOption
)

// DefaultSLOWindow is the default rolling window for SLO objectives.
const DefaultSLOWindow = slo.DefaultWindow

// NewRequestTracer creates a tracer whose IDs derive from seed and
// whose timestamps come from the wall clock — the serving-path
// constructor. Tests wanting byte-stable traces use reqtrace.NewTracer
// with an injected clock instead.
func NewRequestTracer(seed uint64) *RequestTracer {
	return reqtrace.NewTracer(seed, time.Now)
}

// NewFlightRecorder creates a recorder keeping up to n slowest and n
// most recent traces.
func NewFlightRecorder(n int) *FlightRecorder { return reqtrace.NewRecorder(n) }

// FlightRecorderHandler serves a recorder under prefix: an HTML+JSON
// listing at the prefix and one trace's tree at prefix+"/{traceID}".
func FlightRecorderHandler(rec *FlightRecorder, prefix string) http.Handler {
	return reqtrace.Handler(rec, prefix)
}

// NewSLOEngine creates an SLO engine over a collector, evaluating the
// objectives over a rolling window against the wall clock. Export its
// gauges by constructing the exporter with WithSLOGauges.
func NewSLOEngine(t *Telemetry, window time.Duration, objectives []SLOObjective) (*SLOEngine, error) {
	return slo.New(t, time.Now, window, objectives)
}

// WithSLOGauges injects an SLO engine's textjoin_slo_* gauge families
// into every scrape of a MetricsExporter.
func WithSLOGauges(e *SLOEngine) MetricsExporterOption {
	return metrics.WithExtraGauges(e.Gauges)
}

// ParseAlgorithm maps "hhnl", "hvnl", "vvm" or "lsh" to an Algorithm.
func ParseAlgorithm(s string) (Algorithm, error) { return core.ParseAlgorithm(s) }

// ParseWeighting maps "raw", "cosine" or "tfidf" to a Weighting.
func ParseWeighting(s string) (Weighting, error) { return document.ParseWeighting(s) }

// NewLocalMapping builds the memory-resident local → standard term-number
// mapping for an autonomous IR system from its vocabulary.
func NewLocalMapping(system string, dict *Dictionary, localVocab map[uint32]string) (*LocalMapping, error) {
	return termmap.NewLocalMapping(system, dict, localVocab)
}

// Workspace owns a simulated disk and provides convenience builders.
type Workspace struct {
	disk *iosim.Disk
}

// WorkspaceOption configures a workspace.
type WorkspaceOption func(*workspaceConfig)

type workspaceConfig struct {
	pageSize int
	alpha    float64
	ioDelay  time.Duration
}

// WithPageSize sets the simulated page size in bytes (default 4096).
func WithPageSize(n int) WorkspaceOption {
	return func(c *workspaceConfig) { c.pageSize = n }
}

// WithAlpha sets the random/sequential I/O cost ratio (default 5).
func WithAlpha(a float64) WorkspaceOption {
	return func(c *workspaceConfig) { c.alpha = a }
}

// WithIODelay makes every simulated page read cost d of real wall-clock
// time (default 0: reads are free). The I/O accounting is unchanged;
// the knob exists so serving benchmarks can model device latency that
// concurrent requests overlap and serialized ones cannot.
func WithIODelay(d time.Duration) WorkspaceOption {
	return func(c *workspaceConfig) { c.ioDelay = d }
}

// NewWorkspace creates a workspace over a fresh simulated disk.
func NewWorkspace(opts ...WorkspaceOption) *Workspace {
	cfg := workspaceConfig{pageSize: iosim.DefaultPageSize, alpha: iosim.DefaultAlpha}
	for _, o := range opts {
		o(&cfg)
	}
	return &Workspace{disk: iosim.NewDisk(
		iosim.WithPageSize(cfg.pageSize),
		iosim.WithAlpha(cfg.alpha),
		iosim.WithReadDelay(cfg.ioDelay),
	)}
}

// Disk exposes the underlying simulated disk (for I/O statistics).
func (w *Workspace) Disk() *Disk { return w.disk }

// ResetIOStats zeroes the disk's I/O counters, typically after the build
// phase so only join-time I/O is measured.
func (w *Workspace) ResetIOStats() { w.disk.ResetStats() }

// ParkHeads parks every file's head so the next read of each file
// counts as random regardless of prior activity — call it between
// measured runs to make their I/O classification order-independent.
func (w *Workspace) ParkHeads() { w.disk.ParkHeads() }

// IOView is a read-only I/O session over the workspace disk: it carries
// its own head positions (initially parked) and its own IOStats, and
// merges its counters back into the shared totals on Close. Bind a
// join's Inputs to a view with Inputs.WithView, and any number of joins
// can run concurrently, each reporting the same results and Stats a
// serial run would.
type IOView = iosim.View

// Snapshot opens a read-only I/O session over the workspace's immutable
// built structures. Call Close on the returned view when the request is
// done so its I/O counters merge into the workspace totals.
func (w *Workspace) Snapshot() *IOView { return w.disk.View() }

// SetTelemetry attaches a collector to the workspace disk so per-file
// sequential/random read counters and page/latency histograms are
// recorded; nil detaches.
func (w *Workspace) SetTelemetry(t *Telemetry) { w.disk.SetCollector(t) }

// NewCollection stores documents (ids must be dense from 0) as a
// collection on the workspace disk.
func (w *Workspace) NewCollection(name string, docs []*Document) (*Collection, error) {
	f, err := w.disk.Create(name)
	if err != nil {
		return nil, err
	}
	b, err := collection.NewBuilder(name, f)
	if err != nil {
		return nil, err
	}
	for _, d := range docs {
		if err := b.Add(d); err != nil {
			return nil, err
		}
	}
	return b.Finish()
}

// BuildInvertedFile builds a collection's inverted file and B+tree on the
// workspace disk.
func (w *Workspace) BuildInvertedFile(c *Collection) (*InvertedFile, error) {
	ef, err := w.disk.Create(c.Name() + ".inv")
	if err != nil {
		return nil, err
	}
	tf, err := w.disk.Create(c.Name() + ".btree")
	if err != nil {
		return nil, err
	}
	return invfile.Build(c, ef, tf)
}

// GenerateCorpus synthesizes a collection matching the profile.
func (w *Workspace) GenerateCorpus(p Profile, seed int64) (*Collection, error) {
	return corpus.GenerateOn(w.disk, p.Name, p, seed)
}

// Save serializes the workspace's simulated disk — every collection,
// inverted file and B+tree — to w, so structures built once can be
// restored in another process with LoadWorkspace.
func (w *Workspace) Save(dst io.Writer) (int64, error) {
	return w.disk.WriteTo(dst)
}

// LoadWorkspace restores a workspace from a Save snapshot. The restored
// disk starts with cold heads and zero I/O counters; use OpenCollection
// and OpenInvertedFile to re-attach handles.
func LoadWorkspace(src io.Reader) (*Workspace, error) {
	d, err := iosim.ReadDisk(src)
	if err != nil {
		return nil, err
	}
	return &Workspace{disk: d}, nil
}

// OpenCollection re-attaches to a collection of numDocs documents stored
// under name (one sequential statistics-rebuilding scan).
func (w *Workspace) OpenCollection(name string, numDocs int64) (*Collection, error) {
	f, err := w.disk.Open(name)
	if err != nil {
		return nil, err
	}
	return collection.Open(name, f, numDocs)
}

// OpenInvertedFile re-attaches to the inverted file built for c by
// BuildInvertedFile.
func (w *Workspace) OpenInvertedFile(c *Collection) (*InvertedFile, error) {
	ef, err := w.disk.Open(c.Name() + ".inv")
	if err != nil {
		return nil, err
	}
	tf, err := w.disk.Open(c.Name() + ".btree")
	if err != nil {
		return nil, err
	}
	return invfile.Open(ef, tf)
}

// NewDocument builds a document from a term → occurrences map.
func NewDocument(id uint32, counts map[uint32]int) *Document {
	return document.New(id, counts)
}

// NewBatch wraps ad-hoc query documents as a memory-resident join source:
// iterating it costs no I/O, and only HHNL and HVNL apply (no inverted
// file exists for a batch).
func NewBatch(name string, docs []*Document) (*Batch, error) {
	return collection.NewBatch(name, docs)
}

// NewDictionary creates an empty standard term dictionary.
func NewDictionary() *Dictionary { return termmap.NewDictionary() }

// NewTokenizer creates a tokenizer over a shared dictionary.
func NewTokenizer(dict *Dictionary) *Tokenizer {
	return tokenize.New(dict, tokenize.Options{})
}

// Similarity returns the paper's base similarity of two documents.
func Similarity(a, b *Document) float64 { return document.Similarity(a, b) }

// Join failure classes, for callers (such as servers) that map them to
// distinct outcomes. Match with errors.Is: join errors wrap these.
var (
	// ErrInsufficientMemory marks a join whose memory budget cannot
	// hold the algorithm's minimal working set.
	ErrInsufficientMemory = core.ErrInsufficientMemory
	// ErrMissingInput marks a join lacking a required structure (an
	// inverted file, a collection needed by the weighting, ...).
	ErrMissingInput = core.ErrMissingInput
)

// Join runs one of the three algorithms.
func Join(alg Algorithm, in Inputs, opts Options) ([]Result, *JoinStats, error) {
	return core.Join(alg, in, opts)
}

// JoinIntegrated estimates all three costs and runs the cheapest
// algorithm — the paper's integrated algorithm.
func JoinIntegrated(in Inputs, opts Options) ([]Result, *JoinStats, Decision, error) {
	return core.JoinIntegrated(in, opts)
}

// Choose runs only the integrated algorithm's selection step.
func Choose(in Inputs, opts Options) (Decision, error) {
	return core.Choose(in, opts)
}

// EstimateCosts evaluates all six cost formulas of Section 5.
func EstimateCosts(in CostInput, sys System, q QueryParams) []Estimate {
	return costmodel.EstimateAll(in, sys, q)
}

// Profiles returns the paper's WSJ, FR and DOE collection profiles.
func Profiles() []Profile { return corpus.Profiles() }

// NewCatalog creates an empty query catalog.
func NewCatalog() *Catalog { return query.NewCatalog() }

// NewEngine creates a query engine over a catalog.
func NewEngine(cat *Catalog) *Engine { return query.NewEngine(cat) }

// NewRelation creates an in-memory relation.
func NewRelation(name string, columns []Column) (*Relation, error) {
	return relation.New(name, columns)
}

// Attribute types for relation columns.
const (
	// StringType is a character attribute.
	StringType = relation.String
	// IntType is an integer attribute.
	IntType = relation.Int
	// TextType is a textual attribute referencing a document.
	TextType = relation.Text
)

// Values.
var (
	// StringValue makes a string attribute value.
	StringValue = relation.StringValue
	// IntValue makes an integer attribute value.
	IntValue = relation.IntValue
	// TextValue makes a text attribute value referencing a document.
	TextValue = relation.TextValue
)

// RunSimulation regenerates every analytic table of the paper's Section 6
// study.
func RunSimulation() []*SimTable { return simulate.RunAll() }

// RunFindings re-derives the paper's five summary findings.
func RunFindings() []Finding { return simulate.Findings() }

// Extensions beyond the conference paper (its "further studies" items).

// Extended cost model (CPU + communication, further-studies item 2).
type (
	// CPUParams configures CPU-cost accounting in the extended model.
	CPUParams = costmodel.CPUParams
	// NetParams configures communication-cost accounting.
	NetParams = costmodel.NetParams
	// CostBreakdown decomposes an estimate into I/O, CPU and
	// communication components.
	CostBreakdown = costmodel.Breakdown
)

// EstimateTotalCosts evaluates the extended (I/O + CPU + communication)
// model for all three algorithms.
func EstimateTotalCosts(in CostInput, sys System, q QueryParams, cpu CPUParams, net NetParams) []CostBreakdown {
	return costmodel.EstimateAllTotal(in, sys, q, cpu, net)
}

// JoinHHNLParallel runs HHNL with the similarity computation fanned out
// over the given number of workers (0 = GOMAXPROCS); I/O stays
// single-threaded and results are identical to the serial algorithm
// (further-studies item 3).
func JoinHHNLParallel(in Inputs, opts Options, workers int) ([]Result, *JoinStats, error) {
	return core.JoinHHNLParallel(in, opts, workers)
}

// JoinVVMParallel runs VVM with per-term accumulation fanned out over
// workers; the merge scan stays single-threaded.
func JoinVVMParallel(in Inputs, opts Options, workers int) ([]Result, *JoinStats, error) {
	return core.JoinVVMParallel(in, opts, workers)
}

// JoinHVNLParallel runs HVNL with probe-side accumulation fanned out over
// workers owning disjoint inner-id blocks; the B+tree lookups, entry
// fetches and cache stay single-threaded in serial order, so I/O and
// cache statistics match the serial algorithm exactly.
func JoinHVNLParallel(in Inputs, opts Options, workers int) ([]Result, *JoinStats, error) {
	return core.JoinHVNLParallel(in, opts, workers)
}

// MeasureOverlap returns the measured probability that a distinct term of
// outer also appears in inner — the paper's q (swap the arguments for p) —
// computed exactly from the memory-resident document-frequency tables.
func MeasureOverlap(inner, outer *Collection) float64 {
	return stats.OverlapQ(inner, outer)
}

// MeasureDelta estimates δ, the fraction of document pairs with non-zero
// similarity, from the document-frequency tables under term independence.
func MeasureDelta(c1, c2 *Collection) float64 {
	return stats.Delta(c1, c2)
}

// ClusterOrder returns a greedy storage order for the documents such that
// neighbors share many terms — the tractable counterpart of the paper's
// NP-hard optimal-order proposition, realizing its clustered-collection
// scenario for HVNL.
func ClusterOrder(docs []*Document) []int { return cluster.GreedyOrder(docs) }

// ClusterCollection materializes a collection reordered by ClusterOrder
// on the workspace disk, returning the new collection and the mapping
// from new to original document ids.
func (w *Workspace) ClusterCollection(name string, src *Collection) (*Collection, IDMap, error) {
	f, err := w.disk.Create(name)
	if err != nil {
		return nil, nil, err
	}
	return cluster.Clustered(name, f, src)
}

// Signature prefiltering.
type (
	// IDMap records a reordering: IDMap[newID] is the original id.
	IDMap = cluster.IDMap
	// SignatureConfig shapes the superimposed term codes (bits, hashes
	// per bucket, terms per bucket, docs per cluster aggregate).
	SignatureConfig = signature.Config
	// SignatureSidecar is a collection's signature file: per-document,
	// per-page and per-cluster aggregates, memory-resident once opened.
	SignatureSidecar = signature.Sidecar
	// Prefilter supplies sidecars to a join via Options.Prefilter; the
	// joins use them only to skip provably empty work, so results are
	// byte-identical with and without it.
	Prefilter = core.Prefilter
	// PrefilterStats reports pages/clusters/docs skipped and false
	// passes for one join (JoinStats.Prefilter).
	PrefilterStats = core.PrefilterStats
)

// Approximate (LSH) joining.
type (
	// LSHConfig shapes the MinHash/banding signatures (bands, rows per
	// band, seed).
	LSHConfig = lsh.Config
	// LSHSidecar is a collection's MinHash band-key file with its
	// in-memory bucket tables, memory-resident once opened. Supply it to
	// JoinLSH (or the integrated planner) via Options.LSH.
	LSHSidecar = lsh.Sidecar
	// LSHStats reports an approximate join's bucket-probe outcome
	// (JoinStats.LSH).
	LSHStats = core.LSHStats
)

// BuildLSH builds and stores c's MinHash sidecar ("<name>.lsh" on the
// workspace disk), returning the memory-resident handle with its bucket
// tables.
func (w *Workspace) BuildLSH(c *Collection, cfg LSHConfig) (*LSHSidecar, error) {
	f, err := w.disk.Create(c.Name() + ".lsh")
	if err != nil {
		return nil, err
	}
	return lsh.Build(c, f, cfg)
}

// OpenLSH re-attaches to the sidecar built for c by BuildLSH (one
// sequential load of the sidecar file, bucket tables rebuilt in memory).
func (w *Workspace) OpenLSH(c *Collection) (*LSHSidecar, error) {
	f, err := w.disk.Open(c.Name() + ".lsh")
	if err != nil {
		return nil, err
	}
	return lsh.Open(f)
}

// EstimateLSHRecall returns the banding S-curve 1 − (1 − s^rows)^bands:
// the probability that a pair of Jaccard similarity s becomes a
// candidate under the given shape.
func EstimateLSHRecall(bands, rows int, s float64) float64 {
	return lsh.EstimateRecall(bands, rows, s)
}

// JoinLSH runs the approximate MinHash/banding join: candidate pairs
// from shared buckets (Options.LSH must carry the inner sidecar),
// verified with the exact scorer — perfect precision, bounded recall.
func JoinLSH(in Inputs, opts Options) ([]Result, *JoinStats, error) {
	return core.JoinLSH(in, opts)
}

// JoinLSHParallel runs JoinLSH with candidate verification fanned out
// over workers; candidate generation and I/O stay single-threaded, so
// results and Stats are byte-identical to the serial join.
func JoinLSHParallel(in Inputs, opts Options, workers int) ([]Result, *JoinStats, error) {
	return core.JoinLSHParallel(in, opts, workers)
}

// BuildSignatures builds and stores c's signature sidecar ("<name>.sig"
// on the workspace disk), returning the memory-resident handle.
func (w *Workspace) BuildSignatures(c *Collection, cfg SignatureConfig) (*SignatureSidecar, error) {
	f, err := w.disk.Create(c.Name() + ".sig")
	if err != nil {
		return nil, err
	}
	return signature.Build(c, f, cfg)
}

// OpenSignatures re-attaches to the sidecar built for c by
// BuildSignatures (one sequential load of the sidecar file).
func (w *Workspace) OpenSignatures(c *Collection) (*SignatureSidecar, error) {
	f, err := w.disk.Open(c.Name() + ".sig")
	if err != nil {
		return nil, err
	}
	return signature.Open(f)
}

// ClusteredLayout is the product of BuildClusteredLayout: the reordered
// collection with every dependent structure rebuilt against the new ids.
type ClusteredLayout struct {
	// Collection is the reordered collection.
	Collection *Collection
	// IDMap maps the new ids back to the originals.
	IDMap IDMap
	// Signatures is the sidecar built over the reordered layout.
	Signatures *SignatureSidecar
	// InvertedFile is the id-remapped inverted file, or nil when no
	// source inverted file was supplied.
	InvertedFile *InvertedFile
}

// BuildClusteredLayout runs the full cluster-driven build path: reorder
// src by ClusterOrder, build the signature sidecar over the new layout
// (clustering is what makes the aggregates selective), and — when
// srcInv is given — rewrite the inverted file with the remapped ids so
// HVNL probes stay consistent with the reordered collection.
func (w *Workspace) BuildClusteredLayout(name string, src *Collection, srcInv *InvertedFile, cfg SignatureConfig) (*ClusteredLayout, error) {
	c, idmap, err := w.ClusterCollection(name, src)
	if err != nil {
		return nil, err
	}
	sc, err := w.BuildSignatures(c, cfg)
	if err != nil {
		return nil, err
	}
	lay := &ClusteredLayout{Collection: c, IDMap: idmap, Signatures: sc}
	if srcInv != nil {
		ef, err := w.disk.Create(name + ".inv")
		if err != nil {
			return nil, err
		}
		tf, err := w.disk.Create(name + ".btree")
		if err != nil {
			return nil, err
		}
		inv := idmap.Inverse()
		lay.InvertedFile, err = invfile.BuildRemapped(srcInv, func(orig uint32) uint32 { return inv[orig] }, ef, tf)
		if err != nil {
			return nil, err
		}
	}
	return lay, nil
}
