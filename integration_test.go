package textjoin

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"textjoin/internal/core"
	"textjoin/internal/corpus"
	"textjoin/internal/costmodel"
	"textjoin/internal/invfile"
	"textjoin/internal/iosim"
)

// TestIntegrationFullPipeline drives the complete system at a few hundred
// documents: synthetic corpora → collections → inverted files → all five
// join execution paths (three serial algorithms, two parallel variants) →
// clustered reordering → selection subsets → the query layer — asserting
// cross-consistency everywhere.
func TestIntegrationFullPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	d := iosim.NewDisk(iosim.WithPageSize(4096), iosim.WithAlpha(5))
	inner, err := corpus.GenerateOn(d, "inner", corpus.WSJ.Scaled(512), 11)
	if err != nil {
		t.Fatal(err)
	}
	outer, err := corpus.GenerateOn(d, "outer", corpus.DOE.Scaled(512), 12)
	if err != nil {
		t.Fatal(err)
	}
	mkInv := func(c *Collection, prefix string) *invfile.InvertedFile {
		ef, _ := d.Create(prefix + ".inv")
		tf, _ := d.Create(prefix + ".bt")
		inv, err := invfile.Build(c, ef, tf)
		if err != nil {
			t.Fatal(err)
		}
		return inv
	}
	innerInv := mkInv(inner, "inner")
	outerInv := mkInv(outer, "outer")
	d.ResetStats()

	in := core.Inputs{Outer: outer, Inner: inner, InnerInv: innerInv, OuterInv: outerInv}
	opts := core.Options{Lambda: 10, MemoryPages: 64}

	type variant struct {
		name string
		run  func() ([]core.Result, *core.Stats, error)
	}
	variants := []variant{
		{"hhnl", func() ([]core.Result, *core.Stats, error) { return core.JoinHHNL(in, opts) }},
		{"hhnl-backward", func() ([]core.Result, *core.Stats, error) {
			o := opts
			o.Backward = true
			return core.JoinHHNL(in, o)
		}},
		{"hhnl-parallel", func() ([]core.Result, *core.Stats, error) { return core.JoinHHNLParallel(in, opts, 4) }},
		{"hvnl", func() ([]core.Result, *core.Stats, error) { return core.JoinHVNL(in, opts) }},
		{"vvm", func() ([]core.Result, *core.Stats, error) { return core.JoinVVM(in, opts) }},
		{"vvm-parallel", func() ([]core.Result, *core.Stats, error) { return core.JoinVVMParallel(in, opts, 4) }},
	}
	var baseline []core.Result
	for _, v := range variants {
		res, st, err := v.run()
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		if int64(len(res)) != outer.NumDocs() {
			t.Fatalf("%s: %d results, want %d", v.name, len(res), outer.NumDocs())
		}
		if st.Cost <= 0 {
			t.Errorf("%s: cost %v", v.name, st.Cost)
		}
		if baseline == nil {
			baseline = res
			continue
		}
		if err := diffResults(baseline, res); err != nil {
			t.Fatalf("%s vs hhnl: %v", v.name, err)
		}
	}

	// Selection subset: all algorithms agree on the reduced join too.
	r := rand.New(rand.NewSource(5))
	var ids []uint32
	for i := int64(0); i < outer.NumDocs(); i++ {
		if r.Intn(4) == 0 {
			ids = append(ids, uint32(i))
		}
	}
	sub, err := outer.Subset(ids)
	if err != nil {
		t.Fatal(err)
	}
	subIn := core.Inputs{Outer: sub, Inner: inner, InnerInv: innerInv, OuterInv: outerInv}
	var subBase []core.Result
	for _, alg := range []core.Algorithm{core.HHNL, core.HVNL, core.VVM} {
		res, _, err := core.Join(alg, subIn, opts)
		if err != nil {
			t.Fatalf("subset %v: %v", alg, err)
		}
		if len(res) != len(ids) {
			t.Fatalf("subset %v: %d results, want %d", alg, len(res), len(ids))
		}
		if subBase == nil {
			subBase = res
		} else if err := diffResults(subBase, res); err != nil {
			t.Fatalf("subset %v: %v", alg, err)
		}
	}
	// Subset results are a sub-multiset of the full results.
	fullByOuter := make(map[uint32][]core.Match, len(baseline))
	for _, r := range baseline {
		fullByOuter[r.Outer] = r.Matches
	}
	for _, r := range subBase {
		full := fullByOuter[r.Outer]
		if len(full) != len(r.Matches) {
			t.Fatalf("subset outer %d: %d matches vs full %d", r.Outer, len(r.Matches), len(full))
		}
		for j := range full {
			if full[j].Doc != r.Matches[j].Doc {
				t.Fatalf("subset outer %d diverges from full join", r.Outer)
			}
		}
	}

	// Integrated choice runs and agrees with its own estimate ranking.
	res, st, dec, err := core.JoinIntegrated(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := diffResults(baseline, res); err != nil {
		t.Fatalf("integrated: %v", err)
	}
	if st.Algorithm != dec.Chosen {
		t.Errorf("integrated ran %v but chose %v", st.Algorithm, dec.Chosen)
	}
}

// TestIntegrationMeasuredCostBounds checks, across several profiles and
// memory budgets, that measured join costs stay within a sane envelope of
// the analytic model evaluated at the corpora's own statistics.
func TestIntegrationMeasuredCostBounds(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	for _, mem := range []int64{60, 200, 1000} {
		res, err := simulateMeasured(corpus.WSJ, mem)
		if err != nil {
			t.Fatalf("mem=%d: %v", mem, err)
		}
		for _, row := range res {
			if row.measured <= 0 {
				t.Errorf("mem=%d %s: non-positive measured cost", mem, row.alg)
			}
			if !math.IsInf(row.modelSeq, 1) {
				ratio := row.measured / row.modelSeq
				if ratio < 0.1 || ratio > 20 {
					t.Errorf("mem=%d %s: measured/model = %.2f outside [0.1, 20]", mem, row.alg, ratio)
				}
			}
		}
	}
}

type measuredRow struct {
	alg      string
	modelSeq float64
	measured float64
}

func simulateMeasured(p corpus.Profile, mem int64) ([]measuredRow, error) {
	d := iosim.NewDisk(iosim.WithPageSize(4096), iosim.WithAlpha(5))
	c1, err := corpus.GenerateOn(d, "c1", p.Scaled(512), 1)
	if err != nil {
		return nil, err
	}
	c2, err := corpus.GenerateOn(d, "c2", p.Scaled(512), 2)
	if err != nil {
		return nil, err
	}
	mkInv := func(c *Collection, prefix string) (*invfile.InvertedFile, error) {
		ef, err := d.Create(prefix + ".inv")
		if err != nil {
			return nil, err
		}
		tf, err := d.Create(prefix + ".bt")
		if err != nil {
			return nil, err
		}
		return invfile.Build(c, ef, tf)
	}
	inv1, err := mkInv(c1, "c1")
	if err != nil {
		return nil, err
	}
	inv2, err := mkInv(c2, "c2")
	if err != nil {
		return nil, err
	}
	d.ResetStats()
	in := core.Inputs{Outer: c2, Inner: c1, InnerInv: inv1, OuterInv: inv2}
	opts := core.Options{Lambda: 20, MemoryPages: mem}
	mi, err := core.ModelInput(in)
	if err != nil {
		return nil, err
	}
	sys := core.ModelSystem(in, opts)
	q := QueryParams{Lambda: 20, Delta: 0.1}

	var rows []measuredRow
	for _, alg := range []core.Algorithm{core.HHNL, core.HVNL, core.VVM} {
		_, st, err := core.Join(alg, in, opts)
		if err != nil {
			return nil, err
		}
		var model float64
		switch alg {
		case core.HHNL:
			model = costmodel.HHNLSeq(mi, sys, q)
		case core.HVNL:
			model = costmodel.HVNLSeq(mi, sys, q)
		case core.VVM:
			model = costmodel.VVMSeq(mi, sys, q)
		}
		rows = append(rows, measuredRow{alg: alg.String(), modelSeq: model, measured: st.Cost})
	}
	return rows, nil
}

func diffResults(a, b []core.Result) error {
	if len(a) != len(b) {
		return fmt.Errorf("row counts %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Outer != b[i].Outer {
			return fmt.Errorf("row %d outer %d vs %d", i, a[i].Outer, b[i].Outer)
		}
		if len(a[i].Matches) != len(b[i].Matches) {
			return fmt.Errorf("outer %d match counts %d vs %d", a[i].Outer, len(a[i].Matches), len(b[i].Matches))
		}
		for j := range a[i].Matches {
			ma, mb := a[i].Matches[j], b[i].Matches[j]
			if ma.Doc != mb.Doc || math.Abs(ma.Sim-mb.Sim) > 1e-6 {
				return fmt.Errorf("outer %d match %d: %+v vs %+v", a[i].Outer, j, ma, mb)
			}
		}
	}
	return nil
}
